package yfast

import (
	"math/rand"
	"strings"
	"testing"

	"github.com/pimlab/pimtrie/internal/bitstr"
)

func randomShortString(r *rand.Rand, w int) bitstr.String {
	n := r.Intn(w)
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.WriteByte('0' + byte(r.Intn(2)))
	}
	return bitstr.MustParse(b.String())
}

// bruteMaxLCP returns the maximum LCP any stored string achieves with q.
func bruteMaxLCP(stored map[string]uint64, q bitstr.String) (int, bool) {
	best := -1
	for s := range stored {
		if l := bitstr.LCP(bitstr.MustParse(s), q); l > best {
			best = l
		}
	}
	return best, best >= 0
}

// violatesPrefixRule reports whether some stored string with the same LCP
// as the result is a proper prefix of it — the one outcome §4.4.2 forbids
// (it would name a non-direct descendant instead of a direct child).
func violatesPrefixRule(stored map[string]uint64, q bitstr.String, res string, lcp int) bool {
	for s := range stored {
		if len(s) < len(res) && res[:len(s)] == s &&
			bitstr.LCP(bitstr.MustParse(s), q) == lcp {
			return true
		}
	}
	return false
}

func TestTwoLayerAgainstBruteForce(t *testing.T) {
	for _, w := range []int{4, 8, 16, 64} {
		r := rand.New(rand.NewSource(int64(w)))
		idx := NewTwoLayer(w)
		stored := map[string]uint64{}
		for step := 0; step < 2500; step++ {
			switch r.Intn(5) {
			case 0, 1: // insert
				s := randomShortString(r, w)
				p := uint64(r.Intn(1000))
				idx.Insert(s, p)
				stored[s.String()] = p
			case 2: // delete
				s := randomShortString(r, w)
				got := idx.Delete(s)
				_, want := stored[s.String()]
				if got != want {
					t.Fatalf("w=%d step %d: Delete(%q)=%v want %v", w, step, s, got, want)
				}
				delete(stored, s.String())
			default: // lookup
				q := randomShortString(r, w)
				res, ok := idx.Lookup(q)
				wantLCP, wantOK := bruteMaxLCP(stored, q)
				if ok != wantOK {
					t.Fatalf("w=%d step %d: Lookup(%q) ok=%v want %v", w, step, q, ok, wantOK)
				}
				if !ok {
					continue
				}
				// Paper contract: the result is a stored string achieving the
				// maximum LCP, and no stored string with the same LCP is a
				// proper prefix of it.
				p, present := stored[res.Str.String()]
				if !present {
					t.Fatalf("w=%d step %d: Lookup(%q) returned unstored %q", w, step, q, res.Str)
				}
				if p != res.Payload {
					t.Fatalf("w=%d: payload %d, want %d", w, res.Payload, p)
				}
				gotLCP := bitstr.LCP(res.Str, q)
				if gotLCP != wantLCP {
					t.Fatalf("w=%d step %d: Lookup(%q) = %q with lcp %d, max is %d",
						w, step, q, res.Str, gotLCP, wantLCP)
				}
				if violatesPrefixRule(stored, q, res.Str.String(), gotLCP) {
					t.Fatalf("w=%d step %d: Lookup(%q) = %q has a tied stored proper prefix",
						w, step, q, res.Str)
				}
			}
			if idx.Len() != len(stored) {
				t.Fatalf("w=%d: Len=%d stored=%d", w, idx.Len(), len(stored))
			}
		}
	}
}

func TestTwoLayerFigure5(t *testing.T) {
	// Figure 5's worked example uses w = 3: padded integers with validity
	// vectors. Store S_rem strings "01" and "0" ... the figure stores
	// block-root remainders; querying S'_rem = "0" must return "0" itself,
	// and querying "01" with {"0","01"} stored returns "01".
	idx := NewTwoLayer(3)
	idx.Insert(bitstr.MustParse("0"), 10)
	idx.Insert(bitstr.MustParse("01"), 20)
	res, ok := idx.Lookup(bitstr.MustParse("01"))
	if !ok || res.Str.String() != "01" || res.Payload != 20 {
		t.Fatalf("Lookup(01) = %+v, %v", res, ok)
	}
	res, ok = idx.Lookup(bitstr.MustParse("0"))
	if !ok || res.Str.String() != "0" || res.Payload != 10 {
		t.Fatalf("Lookup(0) = %+v, %v", res, ok)
	}
	// Query "00": LCP("0") = 1, LCP("01") = 1; tie-break picks the
	// shortest, "0" — the direct-child guarantee of §4.4.2.
	res, ok = idx.Lookup(bitstr.MustParse("00"))
	if !ok || res.Str.String() != "0" {
		t.Fatalf("Lookup(00) = %+v, %v", res, ok)
	}
}

func TestTwoLayerEmptyStringElement(t *testing.T) {
	idx := NewTwoLayer(8)
	idx.Insert(bitstr.Empty, 5)
	res, ok := idx.Lookup(bitstr.MustParse("1010101"))
	if !ok || res.Str.Len() != 0 || res.Payload != 5 {
		t.Fatalf("empty-string element not found: %+v %v", res, ok)
	}
}

func TestTwoLayerEmptyIndex(t *testing.T) {
	idx := NewTwoLayer(8)
	if _, ok := idx.Lookup(bitstr.MustParse("101")); ok {
		t.Fatal("lookup on empty index succeeded")
	}
}

func TestTwoLayerInsertOverwrite(t *testing.T) {
	idx := NewTwoLayer(8)
	s := bitstr.MustParse("110")
	if !idx.Insert(s, 1) {
		t.Fatal("first insert not new")
	}
	if idx.Insert(s, 2) {
		t.Fatal("second insert reported new")
	}
	res, _ := idx.Lookup(s)
	if res.Payload != 2 {
		t.Fatalf("payload = %d", res.Payload)
	}
	if idx.Len() != 1 {
		t.Fatalf("Len = %d", idx.Len())
	}
}

func TestTwoLayerOversizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for |S| >= w")
		}
	}()
	NewTwoLayer(4).Insert(bitstr.MustParse("1111"), 0)
}

func TestPickValid(t *testing.T) {
	cases := []struct {
		valid       uint64
		l           int
		length, lcp int
	}{
		{0b0100, 2, 2, 2}, // exact
		{0b0100, 1, 2, 1}, // shortest ≥ l
		{0b0100, 3, 2, 2}, // longest < l
		{0b1010, 2, 3, 2}, // 3 ≥ 2 beats 1 < 2
		{0b0010, 0, 1, 0}, // only longer
		{0, 3, -1, -1},    // nothing stored
		{0b1, 0, 0, 0},    // empty string stored
	}
	for _, c := range cases {
		length, lcp := pickValid(c.valid, c.l)
		if length != c.length || lcp != c.lcp {
			t.Errorf("pickValid(%b,%d) = (%d,%d), want (%d,%d)", c.valid, c.l, length, lcp, c.length, c.lcp)
		}
	}
}

func TestLcpInt(t *testing.T) {
	// lcpInt takes right-aligned w-bit integers (as bitstr.Uint64 yields).
	if got := lcpInt(0b101, 0b100, 3); got != 2 {
		t.Fatalf("lcpInt(101,100) = %d, want 2", got)
	}
	if got := lcpInt(0b101, 0b101, 3); got != 3 {
		t.Fatalf("lcpInt equal = %d, want 3", got)
	}
	if got := lcpInt(0b001, 0b101, 3); got != 0 {
		t.Fatalf("lcpInt(001,101) = %d, want 0", got)
	}
}

func BenchmarkTwoLayerLookup(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	idx := NewTwoLayer(64)
	for i := 0; i < 4096; i++ {
		idx.Insert(randomShortString(r, 64), uint64(i))
	}
	qs := make([]bitstr.String, 256)
	for i := range qs {
		qs[i] = randomShortString(r, 64)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx.Lookup(qs[i&255])
	}
}
