module github.com/pimlab/pimtrie

go 1.22
