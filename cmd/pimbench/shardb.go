package main

// Sharded scale-out benchmark (-shards): closed-loop clients hammer a
// shard.Router at several shard counts, then a skew scenario measures
// hot-range migration end-to-end.
//
// Throughput is reported in two currencies. Wall-clock ops/sec is what
// the host actually served — on a small machine it conflates simulator
// CPU contention with real scaling, so it understates sharding badly
// when GOMAXPROCS is low (N shards are N simulated PIM systems
// time-sharing the same cores). PIM Model throughput is the paper's
// currency: each shard's busy model time (IOTime + PIMTime diff over
// the window) is what its PIM hardware would spend, shards run in
// parallel in a real deployment, so the window's makespan is the
// maximum over shards and model throughput is requests/makespan. The
// scaling headline (SpeedupVs1) is the model number; both are
// published.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/pimlab/pimtrie"
	"github.com/pimlab/pimtrie/internal/experiments"
	"github.com/pimlab/pimtrie/internal/serve"
	"github.com/pimlab/pimtrie/internal/shard"
	"github.com/pimlab/pimtrie/internal/workload"
)

// ShardPhase is one measured traffic window against one router.
type ShardPhase struct {
	Name     string `json:"name"`
	Shards   int    `json:"shards"`
	Requests int64  `json:"requests"`
	// WallOpsPerSec is host throughput (simulator CPU bound).
	WallOpsPerSec float64 `json:"wall_ops_per_sec"`
	// ModelBusy is each shard's busy model time (IOTime+PIMTime) in the
	// window; ModelMakespan is their max — the window's duration on
	// parallel PIM hardware; ModelOpsPerKUnit is requests per thousand
	// model time units of makespan, the scaling currency.
	ModelBusy        []int64 `json:"model_busy"`
	ModelMakespan    int64   `json:"model_makespan"`
	ModelOpsPerKUnit float64 `json:"model_ops_per_kunit"`
	// ModelImbalance is max/mean over per-shard busy model time.
	ModelImbalance float64        `json:"model_imbalance"`
	Latency        LatencySummary `json:"latency"`
	Migrations     uint64         `json:"migrations,omitempty"`
	MovedKeys      uint64         `json:"moved_keys,omitempty"`
}

// ShardScalePoint is one shard count of the scaling curve.
type ShardScalePoint struct {
	ShardPhase
	// SpeedupVs1 is this point's model throughput over the 1-shard
	// point's; WallSpeedupVs1 the same in wall clock.
	SpeedupVs1     float64 `json:"speedup_vs_1"`
	WallSpeedupVs1 float64 `json:"wall_speedup_vs_1"`
}

// ShardMigrationReport is the skew scenario: a 90% hot range on a
// contiguous-partitioned router, measured without and with migration.
type ShardMigrationReport struct {
	// Uniform is the no-skew baseline; HotStatic the hotspot with
	// migration off (the damage); HotMigrated the hotspot after the
	// migration loop settled (the recovery).
	Uniform     ShardPhase `json:"uniform"`
	HotStatic   ShardPhase `json:"hot_static"`
	HotMigrated ShardPhase `json:"hot_migrated"`
	// DamageRatio = HotStatic/Uniform and RecoveryRatio =
	// HotMigrated/Uniform, both in model throughput.
	DamageRatio   float64 `json:"damage_ratio"`
	RecoveryRatio float64 `json:"recovery_ratio"`
}

// ShardReport is the file format of -shards output (BENCH_PR8.json).
type ShardReport struct {
	Scale       experiments.Scale `json:"scale"`
	GoMaxProcs  int               `json:"go_max_procs"`
	When        string            `json:"when"`
	Concurrency int               `json:"concurrency"`
	Depth       int               `json:"pipeline_depth"`
	Zipf        float64           `json:"zipf"`
	DurationSec float64           `json:"duration_sec"`
	RouteBits   int               `json:"route_bits"`
	Partitioner string            `json:"partitioner"`

	Scaling []ShardScalePoint `json:"scaling"`
	// ModelSpeedupAt4 / WallSpeedupAt4 quote the 4-shard point (0 when
	// 4 is not among the measured counts).
	ModelSpeedupAt4 float64              `json:"model_speedup_at_4"`
	WallSpeedupAt4  float64              `json:"wall_speedup_at_4"`
	Migration       ShardMigrationReport `json:"migration"`
}

const shardRouteBits = 8

// buildShardRouter constructs a loaded router over the standard key
// population.
func buildShardRouter(sc experiments.Scale, shards, conc, depth int, part shard.Partitioner, linger time.Duration, mig shard.Migration) (*shard.Router, []pimtrie.Key) {
	g := workload.New(sc.Seed + 6)
	keys := g.VarLen(sc.N, 48, 192)
	maxBatch := conc * depth
	if maxBatch < sc.Batch {
		maxBatch = sc.Batch
	}
	r := shard.New(shard.Config{
		Shards:      shards,
		RouteBits:   shardRouteBits,
		Partitioner: part,
		Modules:     sc.P,
		Index:       pimtrie.Options{Seed: sc.Seed},
		Serve:       serve.Options{MaxBatch: maxBatch, MaxLinger: linger},
		Migration:   mig,
	})
	chunk := 4096
	vals := g.Values(len(keys))
	for i := 0; i < len(keys); i += chunk {
		j := i + chunk
		if j > len(keys) {
			j = len(keys)
		}
		if err := r.Insert(keys[i:j], vals[i:j]); err != nil {
			panic(fmt.Sprintf("shard bench load: %v", err))
		}
	}
	return r, keys
}

// runShardPhase drives conc closed-loop clients (depth pipelined
// single-key Gets each, keys drawn by nextFor) for dur and measures the
// window in both currencies.
func runShardPhase(name string, r *shard.Router, conc, depth int, dur time.Duration, nextFor func(w int) func() pimtrie.Key) ShardPhase {
	statsBefore := r.Stats()
	busyBefore := shardBusy(r.ShardMetrics())
	var stop atomic.Bool
	var total atomic.Int64
	lats := make([]*latencyRecorder, conc)
	var wg sync.WaitGroup
	for w := 0; w < conc; w++ {
		lat := &latencyRecorder{}
		lats[w] = lat
		next := nextFor(w)
		wg.Add(1)
		go func() {
			defer wg.Done()
			window := make([]inflight, depth)
			pending, head := 0, 0
			n := int64(0)
			for !stop.Load() {
				if pending == depth {
					h := window[head]
					head = (head + 1) % depth
					pending--
					h.wait()
					lat.observe(time.Since(h.start))
					n++
				}
				f := r.GetAsync(next())
				window[(head+pending)%depth] = inflight{start: time.Now(), wait: func() { f.Wait() }}
				pending++
			}
			// Drained requests executed inside the measured window (their
			// model cost is in the busy deltas), so they count; only
			// their latency is uninteresting.
			for i := 0; i < pending; i++ {
				window[(head+i)%depth].wait()
				n++
			}
			total.Add(n)
		}()
	}
	time.Sleep(dur)
	stop.Store(true)
	wg.Wait()
	elapsed := dur.Seconds()

	busyAfter := shardBusy(r.ShardMetrics())
	statsAfter := r.Stats()
	out := ShardPhase{
		Name:       name,
		Shards:     r.Shards(),
		Requests:   total.Load(),
		Migrations: statsAfter.Migrations - statsBefore.Migrations,
		MovedKeys:  statsAfter.MovedKeys - statsBefore.MovedKeys,
	}
	out.WallOpsPerSec = float64(out.Requests) / elapsed
	out.ModelBusy = make([]int64, len(busyAfter))
	var sum int64
	for i := range busyAfter {
		out.ModelBusy[i] = busyAfter[i] - busyBefore[i]
		sum += out.ModelBusy[i]
		if out.ModelBusy[i] > out.ModelMakespan {
			out.ModelMakespan = out.ModelBusy[i]
		}
	}
	if out.ModelMakespan > 0 {
		out.ModelOpsPerKUnit = 1000 * float64(out.Requests) / float64(out.ModelMakespan)
	}
	if sum > 0 {
		mean := float64(sum) / float64(len(busyAfter))
		out.ModelImbalance = float64(out.ModelMakespan) / mean
	}
	all := &latencyRecorder{}
	all.merge(lats...)
	out.Latency = all.summary()
	return out
}

func shardBusy(ms []pimtrie.Metrics) []int64 {
	out := make([]int64, len(ms))
	for i, m := range ms {
		out[i] = m.IOTime + m.PIMTime
	}
	return out
}

func showShardPhase(p ShardPhase) {
	fmt.Printf("%-16s %d shards %9.0f wall ops/s  %8.1f ops/kunit  makespan %11d  imbal %.2f  p99 %8s",
		p.Name, p.Shards, p.WallOpsPerSec, p.ModelOpsPerKUnit, p.ModelMakespan, p.ModelImbalance,
		time.Duration(int64(p.Latency.P99Ns)).Round(time.Microsecond))
	if p.Migrations > 0 {
		fmt.Printf("  migrations %d (%d keys)", p.Migrations, p.MovedKeys)
	}
	fmt.Println()
}

// runShardSuite executes the scaling curve and the migration scenario
// and writes the JSON report to path ("-" for stdout-only).
func runShardSuite(sc experiments.Scale, conc, depth int, zipfS float64, dur, linger time.Duration, counts []int, path string) error {
	rep := ShardReport{
		Scale:       sc,
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		When:        time.Now().UTC().Format(time.RFC3339),
		Concurrency: conc,
		Depth:       depth,
		Zipf:        zipfS,
		DurationSec: dur.Seconds(),
		RouteBits:   shardRouteBits,
		Partitioner: shard.HashedPrefix{}.Name(),
	}
	fmt.Printf("shards: %d clients x depth %d, Zipf(%.2f), %v per phase, route bits %d, P=%d n=%d (GOMAXPROCS=%d)\n",
		conc, depth, zipfS, dur, shardRouteBits, sc.P, sc.N, rep.GoMaxProcs)
	fmt.Println("model currency: busy = IOTime+PIMTime per shard, makespan = max over shards (shards are parallel PIM systems)")
	fmt.Println()

	// Scaling curve: hashed-prefix partitioning, Zipfian traffic.
	var base ShardScalePoint
	for _, n := range counts {
		r, keys := buildShardRouter(sc, n, conc, depth, shard.HashedPrefix{Seed: sc.Seed}, linger, shard.Migration{})
		phase := runShardPhase(fmt.Sprintf("scale/%d", n), r, conc, depth, dur, func(w int) func() pimtrie.Key {
			st := workload.NewKeyStream(keys, int64(1000+w), zipfS)
			return func() pimtrie.Key { return st.Next() }
		})
		r.Close()
		pt := ShardScalePoint{ShardPhase: phase}
		if len(rep.Scaling) == 0 {
			base = pt // counts start at the single-shard baseline
		}
		if base.ModelOpsPerKUnit > 0 {
			pt.SpeedupVs1 = pt.ModelOpsPerKUnit / base.ModelOpsPerKUnit
		}
		if base.WallOpsPerSec > 0 {
			pt.WallSpeedupVs1 = pt.WallOpsPerSec / base.WallOpsPerSec
		}
		showShardPhase(pt.ShardPhase)
		if n == 4 {
			rep.ModelSpeedupAt4, rep.WallSpeedupAt4 = pt.SpeedupVs1, pt.WallSpeedupVs1
		}
		rep.Scaling = append(rep.Scaling, pt)
	}
	if rep.ModelSpeedupAt4 > 0 {
		fmt.Printf("\n4-shard speedup vs 1: %.2fx model, %.2fx wall\n\n", rep.ModelSpeedupAt4, rep.WallSpeedupAt4)
	}

	// Migration scenario: contiguous partitioning so a lexicographic hot
	// range concentrates on one shard, 90% of traffic inside 1/8th of
	// the sorted key space.
	const (
		migShards = 4
		hotFrac   = 0.9
		hotRanges = 8
	)
	hotStreams := func(keys []pimtrie.Key, hot int) func(w int) func() pimtrie.Key {
		return func(w int) func() pimtrie.Key {
			hs := workload.NewHotRangeStream(keys, int64(3000+w), hotFrac, hotRanges, 0)
			hs.SetHot(hot)
			return func() pimtrie.Key { return hs.Next() }
		}
	}
	uniformStreams := func(keys []pimtrie.Key) func(w int) func() pimtrie.Key {
		return func(w int) func() pimtrie.Key {
			st := workload.NewKeyStream(keys, int64(4000+w), 0)
			return func() pimtrie.Key { return st.Next() }
		}
	}

	// Static router: uniform baseline, then the hotspot damage.
	rs, keys := buildShardRouter(sc, migShards, conc, depth, shard.Contiguous{}, linger, shard.Migration{})
	rep.Migration.Uniform = runShardPhase("mig/uniform", rs, conc, depth, dur, uniformStreams(keys))
	showShardPhase(rep.Migration.Uniform)
	rep.Migration.HotStatic = runShardPhase("mig/hot-static", rs, conc, depth, dur, hotStreams(keys, 2))
	showShardPhase(rep.Migration.HotStatic)
	rs.Close()

	// Migrating router: let the loop settle on the hotspot, then
	// measure. The policy windows are deliberately long relative to the
	// barrier stall a migration causes (draining conc*depth pipelined
	// requests): short windows right after a stall measure the bursty
	// backlog drain, not steady state, and make the policy chase phantom
	// imbalance. MinKeys likewise demands a few pipeline-fills of signal
	// before acting.
	rm, keys := buildShardRouter(sc, migShards, conc, depth, shard.Contiguous{}, linger,
		shard.Migration{Enabled: true, Interval: 250 * time.Millisecond, Threshold: 1.15,
			MaxMoves: 32, MinKeys: uint64(4 * conc * depth)})
	settle := 3 * dur
	if settle < 3*time.Second {
		settle = 3 * time.Second
	}
	_ = runShardPhase("mig/settle", rm, conc, depth, settle, hotStreams(keys, 2))
	settled := rm.Stats()
	rep.Migration.HotMigrated = runShardPhase("mig/hot-migrated", rm, conc, depth, dur, hotStreams(keys, 2))
	end := rm.Stats()
	// Migrations/MovedKeys for this phase are the measure-window deltas;
	// the settle moves are the interesting part of convergence, so print
	// both.
	rep.Migration.HotMigrated.Migrations = end.Migrations - settled.Migrations
	rep.Migration.HotMigrated.MovedKeys = end.MovedKeys - settled.MovedKeys
	showShardPhase(rep.Migration.HotMigrated)
	fmt.Printf("  settle moved %d slots (%d keys); measure window moved %d slots (%d keys)\n",
		settled.Migrations, settled.MovedKeys,
		rep.Migration.HotMigrated.Migrations, rep.Migration.HotMigrated.MovedKeys)
	rm.Close()

	if u := rep.Migration.Uniform.ModelOpsPerKUnit; u > 0 {
		rep.Migration.DamageRatio = rep.Migration.HotStatic.ModelOpsPerKUnit / u
		rep.Migration.RecoveryRatio = rep.Migration.HotMigrated.ModelOpsPerKUnit / u
	}
	fmt.Printf("\nhotspot damage: %.2fx of uniform model throughput without migration; %.2fx with migration\n\n",
		rep.Migration.DamageRatio, rep.Migration.RecoveryRatio)

	if path == "" || path == "-" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
