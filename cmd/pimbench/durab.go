package main

// Durability benchmark (-durable) and crash-restart chaos mode
// (-restart-chaos): what the write-ahead log costs, and proof it works.
//
// The benchmark runs the same write-heavy closed loop against four
// configurations of one recoverable index — no WAL at all, then the
// three fsync policies (off, interval, per-epoch) — and reports each
// policy's throughput tax over the non-durable baseline. Group commit
// is the whole story here: an epoch coalesces many client calls into
// one WAL record, so even fsync-per-epoch amortizes its syscall over
// the batch.
//
// The chaos mode re-execs this binary as a durable serving child
// (-restart-chaos-child), SIGKILLs it at random points and verifies
// bit-exact recovery after every kill — the internal/restart protocol,
// runnable against real disks and flag-chosen scales rather than the
// test suite's fixed small ones.

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/pimlab/pimtrie"
	"github.com/pimlab/pimtrie/internal/bitstr"
	"github.com/pimlab/pimtrie/internal/experiments"
	"github.com/pimlab/pimtrie/internal/restart"
	"github.com/pimlab/pimtrie/internal/serve"
	"github.com/pimlab/pimtrie/internal/wal"
	"github.com/pimlab/pimtrie/internal/workload"
)

// DurScenario is one durability configuration's measured record.
type DurScenario struct {
	Name      string         `json:"name"`
	Requests  int64          `json:"requests"`
	OpsPerSec float64        `json:"ops_per_sec"`
	Latency   LatencySummary `json:"latency"`
	// OverheadPct is the throughput tax vs the non-durable baseline
	// (100 x (1 - ops/sec / baseline ops/sec)); zero for the baseline.
	OverheadPct float64 `json:"overhead_pct"`
	// WAL/checkpoint accounting (zero for the baseline).
	WriteEpochs uint64  `json:"write_epochs,omitempty"`
	WALAppends  uint64  `json:"wal_appends,omitempty"`
	WALFsyncs   uint64  `json:"wal_fsyncs,omitempty"`
	WALMBytes   float64 `json:"wal_mbytes,omitempty"`
}

// DurReport is the file format of -durable output (BENCH_PR9.json).
type DurReport struct {
	Scale       experiments.Scale `json:"scale"`
	GoMaxProcs  int               `json:"go_max_procs"`
	When        string            `json:"when"`
	Concurrency int               `json:"concurrency"`
	Depth       int               `json:"pipeline_depth"`
	DurationSec float64           `json:"duration_sec"`
	Results     []DurScenario     `json:"results"`
	// IntervalOverheadPct repeats the interval policy's overhead — the
	// recommended production setting — as the report's headline number.
	IntervalOverheadPct float64 `json:"interval_overhead_pct"`
	// Passes is how many times each scenario ran; the published record
	// and the overheads use the median pass by throughput (scenario
	// order alternates per pass, so monotone host drift cancels — the
	// same discipline the serve suite uses for its metrics-overhead
	// number).
	Passes int `json:"passes"`
}

// durPolicy selects a scenario: nil policy = no durability layer.
type durPolicy struct {
	name   string
	policy *wal.SyncPolicy
}

func pol(p wal.SyncPolicy) *wal.SyncPolicy { return &p }

// runDurScenario drives conc closed-loop writer clients (depth async
// calls in flight each, 4 keys per call, ~10% deletes) against a fresh
// preloaded recoverable index for dur.
func runDurScenario(p durPolicy, sc experiments.Scale, conc, depth int, dur time.Duration, walRoot string) (DurScenario, *latencyRecorder, error) {
	g := workload.New(sc.Seed)
	keys := g.VarLen(sc.N, 16, 64)
	idx := pimtrie.New(sc.P, pimtrie.Options{Seed: sc.Seed, Recoverable: true})
	idx.Load(keys, g.Values(len(keys)))

	opts := serve.Options{MaxBatch: conc * depth * 4}
	if p.policy != nil {
		dir, err := os.MkdirTemp(walRoot, "pimbench-wal-*")
		if err != nil {
			return DurScenario{}, nil, err
		}
		defer os.RemoveAll(dir)
		log, err := wal.Open(wal.Options{Dir: dir, Policy: *p.policy})
		if err != nil {
			return DurScenario{}, nil, err
		}
		opts.Durable = &serve.Durable{Log: log, OwnLog: true}
	}
	srv := serve.NewServer(idx, opts)

	var stop atomic.Bool
	var total atomic.Int64
	lats := make([]*latencyRecorder, conc)
	var wg sync.WaitGroup
	for w := 0; w < conc; w++ {
		lat := &latencyRecorder{}
		lats[w] = lat
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(7000 + w)))
			fresh := func() pimtrie.Key { return bitstr.FromUint64(r.Uint64(), 17+r.Intn(40)) }
			recent := make([]pimtrie.Key, 0, 64)
			submit := func() func() {
				if len(recent) > 8 && r.Intn(10) == 0 {
					k := recent[r.Intn(len(recent))]
					f := srv.DeleteAsync(k)
					return func() { f.Wait() }
				}
				ks := []pimtrie.Key{fresh(), fresh(), fresh(), fresh()}
				if len(recent) < cap(recent) {
					recent = append(recent, ks[0])
				} else {
					recent[r.Intn(len(recent))] = ks[0]
				}
				f := srv.InsertAsync(ks, []uint64{r.Uint64(), r.Uint64(), r.Uint64(), r.Uint64()})
				return func() { f.Wait() }
			}
			window := make([]inflight, depth)
			pending, head := 0, 0
			n := int64(0)
			for !stop.Load() {
				if pending == depth {
					h := window[head]
					head = (head + 1) % depth
					pending--
					h.wait()
					lat.observe(time.Since(h.start))
					n++
				}
				window[(head+pending)%depth] = inflight{start: time.Now(), wait: submit()}
				pending++
			}
			for i := 0; i < pending; i++ {
				window[(head+i)%depth].wait()
			}
			total.Add(n)
		}(w)
	}
	time.Sleep(dur)
	stop.Store(true)
	wg.Wait()
	st := srv.Stats()
	var ws wal.Stats
	if l := srv.WAL(); l != nil {
		ws = l.Stats()
	}
	srv.Close()
	if err := srv.DurabilityErr(); err != nil {
		return DurScenario{}, nil, fmt.Errorf("%s: %w", p.name, err)
	}
	all := &latencyRecorder{}
	all.merge(lats...)
	return DurScenario{
		Name:        p.name,
		Requests:    total.Load(),
		OpsPerSec:   float64(total.Load()) / dur.Seconds(),
		Latency:     all.summary(),
		WriteEpochs: st.WriteEpochs,
		WALAppends:  ws.Appends,
		WALFsyncs:   ws.Fsyncs,
		WALMBytes:   float64(ws.Bytes) / (1 << 20),
	}, all, nil
}

// runDurableSuite executes the durability scenarios and writes the
// JSON report to path ("-" for stdout only).
func runDurableSuite(sc experiments.Scale, conc, depth int, dur time.Duration, walRoot, path string) error {
	rep := DurReport{
		Scale:       sc,
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		When:        time.Now().UTC().Format(time.RFC3339),
		Concurrency: conc,
		Depth:       depth,
		DurationSec: dur.Seconds(),
	}
	fmt.Printf("durable: %d writer clients x depth %d, %v per scenario, P=%d n=%d (GOMAXPROCS=%d)\n\n",
		conc, depth, dur, sc.P, sc.N, rep.GoMaxProcs)
	if walRoot != "" {
		if err := os.MkdirAll(walRoot, 0o755); err != nil {
			return err
		}
	}
	scenarios := []durPolicy{
		{"writes-nondurable", nil},
		{"writes-wal-nosync", pol(wal.SyncNone)},
		{"writes-wal-interval", pol(wal.SyncInterval)},
		{"writes-wal-epoch", pol(wal.SyncEveryEpoch)},
	}
	const passes = 3
	rep.Passes = passes
	samples := make(map[string][]DurScenario)
	recs := make(map[string][]*latencyRecorder)
	for pass := 0; pass < passes; pass++ {
		order := make([]durPolicy, len(scenarios))
		copy(order, scenarios)
		if pass%2 == 1 { // alternate direction so drift cancels
			for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
				order[i], order[j] = order[j], order[i]
			}
		}
		for _, p := range order {
			runtime.GC()
			res, rec, err := runDurScenario(p, sc, conc, depth, dur, walRoot)
			if err != nil {
				return err
			}
			samples[p.name] = append(samples[p.name], res)
			recs[p.name] = append(recs[p.name], rec)
		}
	}
	median := func(name string) DurScenario {
		s := samples[name]
		sort.Slice(s, func(i, j int) bool { return s[i].OpsPerSec < s[j].OpsPerSec })
		return s[len(s)/2]
	}
	baseline := median(scenarios[0].name).OpsPerSec
	for _, p := range scenarios {
		res := median(p.name)
		if p.policy != nil && baseline > 0 {
			res.OverheadPct = 100 * (1 - res.OpsPerSec/baseline)
		}
		// Throughput and counters come from the median pass (drift-robust),
		// but the published percentiles digest EVERY pass's samples — the
		// same pooling the serve suites use, so tail latencies rest on
		// passes x requests observations instead of one pass's worth.
		pool := &latencyRecorder{}
		pool.merge(recs[p.name]...)
		res.Latency = pool.summary()
		fmt.Printf("%-20s %9.0f calls/s  p50 %8s  p95 %8s  p99 %8s  epochs %6d  appends %6d  fsyncs %5d  wal %6.1f MB  overhead %5.1f%%\n",
			res.Name, res.OpsPerSec,
			time.Duration(int64(res.Latency.P50Ns)).Round(time.Microsecond),
			time.Duration(int64(res.Latency.P95Ns)).Round(time.Microsecond),
			time.Duration(int64(res.Latency.P99Ns)).Round(time.Microsecond),
			res.WriteEpochs, res.WALAppends, res.WALFsyncs, res.WALMBytes, res.OverheadPct)
		if p.name == "writes-wal-interval" {
			rep.IntervalOverheadPct = res.OverheadPct
		}
		rep.Results = append(rep.Results, res)
	}
	fmt.Printf("\ninterval-fsync durability overhead: %.1f%% of non-durable throughput\n\n", rep.IntervalOverheadPct)
	if path == "" || path == "-" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// chaosIndex is the shared index constructor of the chaos parent and
// child: both sides must rebuild identically for recovery to be
// comparable.
func chaosIndex(p int, seed int64) func() *pimtrie.Index {
	return func() *pimtrie.Index {
		return pimtrie.New(p, pimtrie.Options{Seed: seed, Recoverable: true})
	}
}

// runChaosChild is the -restart-chaos-child body: serve durable writes
// from dir until the parent kills us.
func runChaosChild(dir string, p int, seed int64, syncPolicy string) error {
	if dir == "" {
		return fmt.Errorf("-restart-chaos-child requires -wal-dir")
	}
	policy, err := wal.ParseSyncPolicy(syncPolicy)
	if err != nil {
		return err
	}
	return restart.RunChild(dir, uint64(seed), policy, chaosIndex(p, seed))
}

// runChaosParent is the -restart-chaos driver: rounds spawn/kill/verify
// cycles against dir (a temp dir when -wal-dir is unset).
func runChaosParent(rounds int, dir string, p int, seed int64, syncPolicy string) error {
	if dir == "" {
		d, err := os.MkdirTemp("", "pimbench-chaos-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(d)
		dir = d
	}
	if _, err := wal.ParseSyncPolicy(syncPolicy); err != nil {
		return err
	}
	spawn := func(d string) *exec.Cmd {
		return exec.Command(os.Args[0], "-restart-chaos-child",
			"-wal-dir", d,
			"-p", fmt.Sprint(p),
			"-seed", fmt.Sprint(seed),
			"-wal-sync", syncPolicy)
	}
	logf := func(format string, args ...any) { fmt.Printf(format+"\n", args...) }
	final, err := restart.RunParent(restart.Config{
		Dir:      dir,
		Seed:     uint64(seed),
		Rounds:   rounds,
		NewIndex: chaosIndex(p, seed),
		Logf:     logf,
	}, spawn)
	if err != nil {
		return err
	}
	fmt.Printf("restart-chaos: %d ops survived %d kills bit-identically\n", final, rounds)
	return nil
}
