package main

// Read-path benchmark (-serve-read): the same closed-loop clients as
// -serve, but sweeping the read/write mix and the read consistency mode
// — ReadStrong through the epoch scheduler vs ReadSnapshot off the
// published COW snapshot. The grid is {50/50, 90/10, 99/1 read mix} x
// {strong, snapshot} x {1, 16, 64 clients}; writes always overwrite
// Zipf-hot keys through the scheduler, so snapshot scenarios measure
// the fast path under constant republication and real recent-writes
// fallbacks, not an idle read-only index. The headline number is the
// snapshot/strong throughput ratio at the 90/10 mix with 64 clients —
// the read-heavy skewed regime the wait-free path exists for.

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/pimlab/pimtrie"
	"github.com/pimlab/pimtrie/internal/experiments"
	"github.com/pimlab/pimtrie/internal/serve"
	"github.com/pimlab/pimtrie/internal/workload"
)

// ReadScenario is one (mix, mode, clients) cell's measured record.
type ReadScenario struct {
	Name      string         `json:"name"`
	Mode      string         `json:"mode"` // "strong" | "snapshot"
	ReadPct   int            `json:"read_pct"`
	Clients   int            `json:"clients"`
	Requests  int64          `json:"requests"`
	OpsPerSec float64        `json:"ops_per_sec"`
	Latency   LatencySummary `json:"latency"`
	// Snapshot-path accounting (zero in strong mode).
	SnapshotKeys      uint64 `json:"snapshot_keys,omitempty"`
	SnapshotFallbacks uint64 `json:"snapshot_fallbacks,omitempty"`
}

// ReadReport is the file format of -serve-read output (BENCH_PR10.json).
type ReadReport struct {
	Scale       experiments.Scale `json:"scale"`
	GoMaxProcs  int               `json:"go_max_procs"`
	When        string            `json:"when"`
	Depth       int               `json:"pipeline_depth"`
	Zipf        float64           `json:"zipf"`
	DurationSec float64           `json:"duration_sec"`
	LingerSec   float64           `json:"linger_sec"`
	Results     []ReadScenario    `json:"results"`
	// SnapshotSpeedup is ops/sec(snapshot)/ops/sec(strong) at the 90/10
	// mix with 64 clients; SnapshotP50Ratio the matching p50 ratio
	// (lower is better for the snapshot path).
	SnapshotSpeedup  float64 `json:"snapshot_speedup_90r_64c"`
	SnapshotP50Ratio float64 `json:"snapshot_p50_ratio_90r_64c"`
}

// runReadScenario drives clients closed-loop workers mixing readPct%
// reads (in the given consistency mode) with Zipf-hot overwrites for
// dur against a fresh preloaded recoverable index. Strong reads and all
// writes pipeline depth-deep like -serve; snapshot reads run inline on
// the client goroutine — wait-free calls have nothing to overlap.
func runReadScenario(name, mode string, readPct, clients int, sc experiments.Scale, depth int, zipfS float64, dur, linger time.Duration) ReadScenario {
	g := workload.New(sc.Seed)
	keys := g.VarLen(sc.N, 48, 192)
	idx := pimtrie.New(sc.P, pimtrie.Options{Seed: sc.Seed, Recoverable: true})
	idx.Load(keys, g.Values(len(keys)))
	maxBatch := clients * depth
	if maxBatch < sc.Batch {
		maxBatch = sc.Batch
	}
	srv := serve.NewServer(idx, serve.Options{
		MaxBatch:      maxBatch,
		MaxLinger:     linger,
		SnapshotReads: mode == "snapshot",
	})

	var stop atomic.Bool
	var total atomic.Int64
	lats := make([]*latencyRecorder, clients)
	var wg sync.WaitGroup
	for w := 0; w < clients; w++ {
		lat := &latencyRecorder{}
		lats[w] = lat
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			stream := workload.NewKeyStream(keys, int64(1000+w), zipfS)
			r := rand.New(rand.NewSource(int64(3000 + w)))
			ks := make([]pimtrie.Key, 1)
			vb := make([]uint64, 1)
			fb := make([]bool, 1)
			window := make([]inflight, depth)
			pending, head := 0, 0
			n := int64(0)
			for !stop.Load() {
				k := stream.Next()
				if r.Intn(100) < readPct && mode == "snapshot" {
					// Wait-free read: resolves on this goroutine, so it
					// neither needs nor benefits from the pipeline window.
					ks[0] = k
					start := time.Now()
					srv.GetBatch(serve.ReadSnapshot, ks, vb, fb)
					lat.observe(time.Since(start))
					n++
					continue
				}
				if pending == depth {
					h := window[head]
					head = (head + 1) % depth
					pending--
					h.wait()
					lat.observe(time.Since(h.start))
					n++
				}
				var wait func()
				if r.Intn(100) < readPct {
					f := srv.GetAsync(k)
					wait = func() { f.Wait() }
				} else {
					f := srv.InsertAsync([]pimtrie.Key{k}, []uint64{r.Uint64()})
					wait = func() { f.Wait() }
				}
				window[(head+pending)%depth] = inflight{start: time.Now(), wait: wait}
				pending++
			}
			for i := 0; i < pending; i++ {
				window[(head+i)%depth].wait()
			}
			total.Add(n)
		}(w)
	}
	time.Sleep(dur)
	stop.Store(true)
	wg.Wait()
	st := srv.Stats()
	srv.Close()
	all := &latencyRecorder{}
	all.merge(lats...)
	return ReadScenario{
		Name:              name,
		Mode:              mode,
		ReadPct:           readPct,
		Clients:           clients,
		Requests:          total.Load(),
		OpsPerSec:         float64(total.Load()) / dur.Seconds(),
		Latency:           all.summary(),
		SnapshotKeys:      st.SnapshotKeys,
		SnapshotFallbacks: st.SnapshotFallbacks,
	}
}

// runServeReadSuite executes the read-mix x mode x clients grid and
// writes the JSON report to path ("-" for stdout only).
func runServeReadSuite(sc experiments.Scale, depth int, zipfS float64, dur, linger time.Duration, path string) error {
	rep := ReadReport{
		Scale:       sc,
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		When:        time.Now().UTC().Format(time.RFC3339),
		Depth:       depth,
		Zipf:        zipfS,
		DurationSec: dur.Seconds(),
		LingerSec:   linger.Seconds(),
	}
	fmt.Printf("serve-read: depth %d, Zipf(%.2f), %v per scenario, linger %v, P=%d n=%d (GOMAXPROCS=%d)\n\n",
		depth, zipfS, dur, linger, sc.P, sc.N, rep.GoMaxProcs)

	var strong90c64, snap90c64 *ReadScenario
	for _, readPct := range []int{50, 90, 99} {
		for _, clients := range []int{1, 16, 64} {
			for _, mode := range []string{"strong", "snapshot"} {
				name := fmt.Sprintf("read%d-%s-c%d", readPct, mode, clients)
				runtime.GC()
				res := runReadScenario(name, mode, readPct, clients, sc, depth, zipfS, dur, linger)
				fmt.Printf("%-22s %9.0f ops/s  p50 %8s  p95 %8s  p99 %8s  snap %d/%d\n",
					res.Name, res.OpsPerSec,
					time.Duration(int64(res.Latency.P50Ns)).Round(time.Microsecond),
					time.Duration(int64(res.Latency.P95Ns)).Round(time.Microsecond),
					time.Duration(int64(res.Latency.P99Ns)).Round(time.Microsecond),
					res.SnapshotKeys, res.SnapshotFallbacks)
				rep.Results = append(rep.Results, res)
				if readPct == 90 && clients == 64 {
					last := &rep.Results[len(rep.Results)-1]
					if mode == "strong" {
						strong90c64 = last
					} else {
						snap90c64 = last
					}
				}
			}
		}
		fmt.Println()
	}
	if strong90c64 != nil && snap90c64 != nil && strong90c64.OpsPerSec > 0 {
		rep.SnapshotSpeedup = snap90c64.OpsPerSec / strong90c64.OpsPerSec
		if strong90c64.Latency.P50Ns > 0 {
			rep.SnapshotP50Ratio = float64(snap90c64.Latency.P50Ns) / float64(strong90c64.Latency.P50Ns)
		}
		fmt.Printf("snapshot-read speedup at 90/10, 64 clients: %.2fx (p50 ratio %.3f)\n\n",
			rep.SnapshotSpeedup, rep.SnapshotP50Ratio)
	}
	if path == "" || path == "-" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
