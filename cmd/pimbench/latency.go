package main

// Wall-clock latency recording shared by the -bench and -serve suites:
// a sample-collecting recorder per worker (merged lock-free at the end)
// and a nearest-rank percentile summary.

import (
	"sort"
	"time"

	"github.com/pimlab/pimtrie/internal/metrics"
)

// LatencySummary is the percentile digest of one benchmark's or one
// serving scenario's latency samples, in nanoseconds. Percentiles use
// the same nearest-rank rule as the live histogram quantiles
// (metrics.NearestRank), so offline reports and /varz digests of the
// same run cannot disagree on semantics.
type LatencySummary struct {
	Count  int     `json:"count"`
	P50Ns  float64 `json:"p50_ns"`
	P95Ns  float64 `json:"p95_ns"`
	P99Ns  float64 `json:"p99_ns"`
	P999Ns float64 `json:"p999_ns"`
	MaxNs  float64 `json:"max_ns"`
}

// latencyRecorder collects raw duration samples. Not safe for
// concurrent use; give each worker its own and merge.
type latencyRecorder struct {
	samples []time.Duration
}

func (l *latencyRecorder) observe(d time.Duration) {
	l.samples = append(l.samples, d)
}

// time runs fn and records its duration.
func (l *latencyRecorder) time(fn func()) {
	start := time.Now()
	fn()
	l.observe(time.Since(start))
}

func (l *latencyRecorder) merge(others ...*latencyRecorder) {
	for _, o := range others {
		l.samples = append(l.samples, o.samples...)
	}
}

// summary sorts the samples (destructively) and digests them.
func (l *latencyRecorder) summary() LatencySummary {
	n := len(l.samples)
	if n == 0 {
		return LatencySummary{}
	}
	sort.Slice(l.samples, func(a, b int) bool { return l.samples[a] < l.samples[b] })
	rank := func(q float64) float64 {
		return float64(l.samples[metrics.NearestRank(n, q)].Nanoseconds())
	}
	return LatencySummary{
		Count:  n,
		P50Ns:  rank(0.50),
		P95Ns:  rank(0.95),
		P99Ns:  rank(0.99),
		P999Ns: rank(0.999),
		MaxNs:  rank(1),
	}
}
