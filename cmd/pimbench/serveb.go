package main

// Concurrent-serving benchmark (-serve): closed-loop clients hammer one
// index through serve.Server and through the naive alternative (a mutex
// around one-key-per-batch direct Index calls — what a caller without
// the serving layer would write), at the same concurrency and key skew.
// The interesting number is the coalescing speedup: batches are the
// unit of parallelism in the PIM model, so turning C concurrent
// single-key requests into large epochs is where the serving layer
// earns its keep.

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/pimlab/pimtrie"
	"github.com/pimlab/pimtrie/internal/experiments"
	"github.com/pimlab/pimtrie/internal/serve"
	"github.com/pimlab/pimtrie/internal/workload"
)

// ServeScenario is one serving configuration's measured record.
type ServeScenario struct {
	Name      string         `json:"name"`
	Requests  int64          `json:"requests"`
	OpsPerSec float64        `json:"ops_per_sec"`
	Latency   LatencySummary `json:"latency"`
	// Serving-layer counters (zero for the naive baseline).
	ReadEpochs   uint64  `json:"read_epochs,omitempty"`
	WriteEpochs  uint64  `json:"write_epochs,omitempty"`
	AvgEpochKeys float64 `json:"avg_epoch_keys,omitempty"`
	MaxEpochKeys int     `json:"max_epoch_keys,omitempty"`
	CacheHits    uint64  `json:"cache_hits,omitempty"`
	CacheMisses  uint64  `json:"cache_misses,omitempty"`
}

// ServeReport is the file format of -serve output (BENCH_PR5.json).
type ServeReport struct {
	Scale       experiments.Scale `json:"scale"`
	GoMaxProcs  int               `json:"go_max_procs"`
	When        string            `json:"when"`
	Concurrency int               `json:"concurrency"`
	Depth       int               `json:"pipeline_depth"`
	Zipf        float64           `json:"zipf"`
	DurationSec float64           `json:"duration_sec"`
	Results     []ServeScenario   `json:"results"`
	LingerSec   float64           `json:"linger_sec"`
	// SpeedupVsNaive is the best serving configuration's ops/sec
	// (coalescing, with or without the hot-key cache) over the naive
	// one-request-per-batch loop at identical concurrency and skew.
	SpeedupVsNaive float64 `json:"speedup_vs_naive"`
}

type serveMode int

const (
	modeNaive serveMode = iota // mutex + one-key batches, no Server
	modeServe                  // coalescing Server, cache off
	modeCache                  // coalescing Server, hot-key cache on
	modeMixed                  // Server, 90% get / 5% insert / 5% delete
)

// inflight is one pipelined request a client has submitted but not yet
// reaped.
type inflight struct {
	start time.Time
	wait  func()
}

// runServeScenario runs conc closed-loop clients for dur against a
// fresh index and returns the measured record. Clients of the serving
// modes pipeline depth async requests each (the point of the async
// API: pending requests are what the scheduler coalesces); the naive
// baseline gains nothing from pipelining — every request is its own
// one-key batch behind the mutex — so its clients loop synchronously.
func runServeScenario(name string, mode serveMode, sc experiments.Scale, conc, depth int, zipfS float64, dur, linger time.Duration) ServeScenario {
	idx, keys, _ := opIndex(sc, 6)
	// The scheduler coalesces whatever is in flight; cap epochs at the
	// full pipeline window (conc clients x depth pending each) so the
	// batch-size amortization isn't artificially cut short.
	maxBatch := conc * depth
	if maxBatch < sc.Batch {
		maxBatch = sc.Batch
	}
	var srv *serve.Server
	switch mode {
	case modeServe, modeMixed:
		srv = serve.NewServer(idx, serve.Options{MaxBatch: maxBatch, MaxLinger: linger})
	case modeCache:
		srv = serve.NewServer(idx, serve.Options{MaxBatch: maxBatch, MaxLinger: linger, CacheSize: 16 * conc})
	}
	var mu sync.Mutex // modeNaive: the serialization a Server-less caller needs
	var stop atomic.Bool
	var total atomic.Int64
	lats := make([]*latencyRecorder, conc)
	var wg sync.WaitGroup
	for w := 0; w < conc; w++ {
		lat := &latencyRecorder{}
		lats[w] = lat
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			stream := workload.NewKeyStream(keys, int64(1000+w), zipfS)
			r := rand.New(rand.NewSource(int64(2000 + w)))
			n := int64(0)
			if mode == modeNaive {
				for !stop.Load() {
					k := stream.Next()
					start := time.Now()
					mu.Lock()
					idx.Get([]pimtrie.Key{k})
					mu.Unlock()
					lat.observe(time.Since(start))
					n++
				}
				total.Add(n)
				return
			}
			submit := func(k pimtrie.Key) func() {
				switch {
				case mode == modeMixed && r.Intn(20) == 0:
					f := srv.InsertAsync([]pimtrie.Key{k}, []uint64{r.Uint64()})
					return func() { f.Wait() }
				case mode == modeMixed && r.Intn(19) == 0:
					f := srv.DeleteAsync(k)
					return func() { f.Wait() }
				default:
					f := srv.GetAsync(k)
					return func() { f.Wait() }
				}
			}
			// Ring of pending requests: reap the oldest once depth are
			// in flight, then submit the next into the freed slot.
			window := make([]inflight, depth)
			pending, head := 0, 0
			for !stop.Load() {
				if pending == depth {
					h := window[head]
					head = (head + 1) % depth
					pending--
					h.wait()
					lat.observe(time.Since(h.start))
					n++
				}
				k := stream.Next()
				window[(head+pending)%depth] = inflight{start: time.Now(), wait: submit(k)}
				pending++
			}
			for i := 0; i < pending; i++ {
				window[(head+i)%depth].wait()
			}
			total.Add(n)
		}(w)
	}
	time.Sleep(dur)
	stop.Store(true)
	wg.Wait()
	elapsed := dur.Seconds()
	if srv != nil {
		srv.Close()
	}
	all := &latencyRecorder{}
	all.merge(lats...)
	out := ServeScenario{
		Name:      name,
		Requests:  total.Load(),
		OpsPerSec: float64(total.Load()) / elapsed,
		Latency:   all.summary(),
	}
	if srv != nil {
		st := srv.Stats()
		out.ReadEpochs, out.WriteEpochs = st.ReadEpochs, st.WriteEpochs
		out.CacheHits, out.CacheMisses = st.CacheHits, st.CacheMisses
		out.MaxEpochKeys = st.MaxEpochKeys
		var execd uint64
		for op := range st.KeysExecuted {
			execd += st.KeysExecuted[op]
		}
		if epochs := st.ReadEpochs + st.WriteEpochs; epochs > 0 {
			out.AvgEpochKeys = float64(execd) / float64(epochs)
		}
	}
	return out
}

// runServeSuite executes the serving scenarios and writes the JSON
// report to path ("-" for stdout-only).
func runServeSuite(sc experiments.Scale, conc, depth int, zipfS float64, dur, linger time.Duration, path string) error {
	rep := ServeReport{
		Scale:       sc,
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		When:        time.Now().UTC().Format(time.RFC3339),
		Concurrency: conc,
		Depth:       depth,
		Zipf:        zipfS,
		DurationSec: dur.Seconds(),
		LingerSec:   linger.Seconds(),
	}
	fmt.Printf("serve: %d clients x depth %d, Zipf(%.2f), %v per scenario, linger %v, P=%d n=%d (GOMAXPROCS=%d)\n\n",
		conc, depth, zipfS, dur, linger, sc.P, sc.N, rep.GoMaxProcs)
	scenarios := []struct {
		name string
		mode serveMode
	}{
		{"naive-1key-batches", modeNaive},
		{"coalesced", modeServe},
		{"coalesced+cache", modeCache},
		{"mixed-writes", modeMixed},
	}
	for _, s := range scenarios {
		res := runServeScenario(s.name, s.mode, sc, conc, depth, zipfS, dur, linger)
		rep.Results = append(rep.Results, res)
		fmt.Printf("%-20s %9.0f ops/s  p50 %8s  p99 %8s  epochs %d/%d  avg %5.1f keys/epoch  cache %d/%d\n",
			res.Name, res.OpsPerSec,
			time.Duration(int64(res.Latency.P50Ns)).Round(time.Microsecond),
			time.Duration(int64(res.Latency.P99Ns)).Round(time.Microsecond),
			res.ReadEpochs, res.WriteEpochs, res.AvgEpochKeys, res.CacheHits, res.CacheMisses)
	}
	if rep.Results[0].OpsPerSec > 0 {
		best := rep.Results[1].OpsPerSec
		if rep.Results[2].OpsPerSec > best {
			best = rep.Results[2].OpsPerSec
		}
		rep.SpeedupVsNaive = best / rep.Results[0].OpsPerSec
	}
	fmt.Printf("\nserving-layer speedup vs naive loop: %.2fx\n\n", rep.SpeedupVsNaive)
	if path == "" || path == "-" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
