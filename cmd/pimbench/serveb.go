package main

// Concurrent-serving benchmark (-serve): closed-loop clients hammer one
// index through serve.Server and through the naive alternative (a mutex
// around one-key-per-batch direct Index calls — what a caller without
// the serving layer would write), at the same concurrency and key skew.
// The interesting number is the coalescing speedup: batches are the
// unit of parallelism in the PIM model, so turning C concurrent
// single-key requests into large epochs is where the serving layer
// earns its keep.

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/pimlab/pimtrie"
	"github.com/pimlab/pimtrie/internal/experiments"
	"github.com/pimlab/pimtrie/internal/metrics"
	"github.com/pimlab/pimtrie/internal/obs"
	"github.com/pimlab/pimtrie/internal/serve"
	"github.com/pimlab/pimtrie/internal/workload"
)

// ServeScenario is one serving configuration's measured record.
type ServeScenario struct {
	Name      string         `json:"name"`
	Requests  int64          `json:"requests"`
	OpsPerSec float64        `json:"ops_per_sec"`
	Latency   LatencySummary `json:"latency"`
	// Serving-layer counters (zero for the naive baseline).
	ReadEpochs      uint64  `json:"read_epochs,omitempty"`
	WriteEpochs     uint64  `json:"write_epochs,omitempty"`
	AvgEpochKeys    float64 `json:"avg_epoch_keys,omitempty"`
	MaxEpochKeys    int     `json:"max_epoch_keys,omitempty"`
	CacheHits       uint64  `json:"cache_hits,omitempty"`
	CacheMisses     uint64  `json:"cache_misses,omitempty"`
	CacheAdmissions uint64  `json:"cache_admissions,omitempty"`
	DedupedKeys     uint64  `json:"deduped_keys,omitempty"`
	DedupeRatio     float64 `json:"dedupe_ratio,omitempty"`
}

// ServeReport is the file format of -serve output (BENCH_PR5.json).
type ServeReport struct {
	Scale       experiments.Scale `json:"scale"`
	GoMaxProcs  int               `json:"go_max_procs"`
	When        string            `json:"when"`
	Concurrency int               `json:"concurrency"`
	Depth       int               `json:"pipeline_depth"`
	Zipf        float64           `json:"zipf"`
	DurationSec float64           `json:"duration_sec"`
	Results     []ServeScenario   `json:"results"`
	LingerSec   float64           `json:"linger_sec"`
	// SpeedupVsNaive is the best serving configuration's ops/sec
	// (coalescing, with or without the hot-key cache) over the naive
	// one-request-per-batch loop at identical concurrency and skew.
	SpeedupVsNaive float64 `json:"speedup_vs_naive"`
	// MetricsOverheadPct is the throughput cost of the full telemetry
	// plane (serve instruments + PIM monitor). A single A/B run is too
	// noisy to trust on a loaded host, so the suite runs the coalesced
	// and coalesced+metrics configurations as OverheadPasses interleaved
	// pairs (order alternating within pairs) and reports 100 x (1 -
	// median over pairs of ops/sec(metrics)/ops/sec(plain)): pairing
	// cancels slow host drift, alternation cancels order effects, the
	// median discards GC/scheduler outliers. Negative values are
	// residual noise.
	MetricsOverheadPct float64 `json:"metrics_overhead_pct"`
	OverheadPasses     int     `json:"overhead_passes"`
}

type serveMode int

const (
	modeNaive    serveMode = iota // mutex + one-key batches, no Server
	modeServe                     // coalescing Server, cache off
	modeMetrics                   // modeServe plus the full telemetry plane
	modeCache                     // coalescing Server, hot-key cache on
	modeMixed                     // Server, 90% get / 5% insert / 5% delete
	modeAdaptive                  // coalescing Server, adaptive epoch controller
)

// inflight is one pipelined request a client has submitted but not yet
// reaped.
type inflight struct {
	start time.Time
	wait  func()
}

// scenarioRaw carries the pre-digest measurement state of one scenario
// pass, so several passes of the same configuration can be merged into
// one record (latency samples re-summarized, derived ratios recomputed
// from summed numerators/denominators rather than averaged).
type scenarioRaw struct {
	rec      *latencyRecorder
	execKeys uint64 // keys executed across all ops
	readKeys uint64 // keys executed by read ops (dedupe-ratio denominator)
}

// runServeScenario runs conc closed-loop clients for dur against a
// fresh index and returns the measured record. Clients of the serving
// modes pipeline depth async requests each (the point of the async
// API: pending requests are what the scheduler coalesces); the naive
// baseline gains nothing from pipelining — every request is its own
// one-key batch behind the mutex — so its clients loop synchronously.
func runServeScenario(name string, mode serveMode, sc experiments.Scale, conc, depth int, zipfS float64, dur, linger time.Duration, pl *obsPlane) (ServeScenario, scenarioRaw) {
	idx, keys, _ := opIndex(sc, 6)
	// The scheduler coalesces whatever is in flight; cap epochs at the
	// full pipeline window (conc clients x depth pending each) so the
	// batch-size amortization isn't artificially cut short.
	maxBatch := conc * depth
	if maxBatch < sc.Batch {
		maxBatch = sc.Batch
	}
	var srv *serve.Server
	switch mode {
	case modeServe, modeMixed:
		srv = serve.NewServer(idx, serve.Options{MaxBatch: maxBatch, MaxLinger: linger})
	case modeAdaptive:
		// The controller picks linger and epoch size itself; the -linger
		// flag is irrelevant here (MaxLinger left 0 selects the adaptive
		// default cap).
		srv = serve.NewServer(idx, serve.Options{MaxBatch: maxBatch, AdaptiveLinger: true})
	case modeMetrics:
		// Same configuration as modeServe with the whole telemetry plane
		// attached — serving instruments plus the PIM monitor — so the
		// coalesced/coalesced+metrics throughput delta IS the plane's cost.
		// The registry is shared with -metrics-addr when given, so a
		// scraper sees this scenario live; otherwise it is run-local.
		reg := metrics.NewRegistry()
		if pl != nil {
			reg = pl.reg
		}
		idx.SetRecorder(obs.NewMonitor(reg, idx.P()))
		srv = serve.NewServer(idx, serve.Options{MaxBatch: maxBatch, MaxLinger: linger, Metrics: reg})
		if pl != nil {
			pl.srv.Store(srv)
		}
	case modeCache:
		srv = serve.NewServer(idx, serve.Options{MaxBatch: maxBatch, MaxLinger: linger, CacheSize: 16 * conc})
	}
	var mu sync.Mutex // modeNaive: the serialization a Server-less caller needs
	var stop atomic.Bool
	var total atomic.Int64
	lats := make([]*latencyRecorder, conc)
	var wg sync.WaitGroup
	for w := 0; w < conc; w++ {
		lat := &latencyRecorder{}
		lats[w] = lat
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			stream := workload.NewKeyStream(keys, int64(1000+w), zipfS)
			r := rand.New(rand.NewSource(int64(2000 + w)))
			n := int64(0)
			if mode == modeNaive {
				for !stop.Load() {
					k := stream.Next()
					start := time.Now()
					mu.Lock()
					idx.Get([]pimtrie.Key{k})
					mu.Unlock()
					lat.observe(time.Since(start))
					n++
				}
				total.Add(n)
				return
			}
			submit := func(k pimtrie.Key) func() {
				switch {
				case mode == modeMixed && r.Intn(20) == 0:
					f := srv.InsertAsync([]pimtrie.Key{k}, []uint64{r.Uint64()})
					return func() { f.Wait() }
				case mode == modeMixed && r.Intn(19) == 0:
					f := srv.DeleteAsync(k)
					return func() { f.Wait() }
				default:
					f := srv.GetAsync(k)
					return func() { f.Wait() }
				}
			}
			// Ring of pending requests: reap the oldest once depth are
			// in flight, then submit the next into the freed slot.
			window := make([]inflight, depth)
			pending, head := 0, 0
			for !stop.Load() {
				if pending == depth {
					h := window[head]
					head = (head + 1) % depth
					pending--
					h.wait()
					lat.observe(time.Since(h.start))
					n++
				}
				k := stream.Next()
				window[(head+pending)%depth] = inflight{start: time.Now(), wait: submit(k)}
				pending++
			}
			for i := 0; i < pending; i++ {
				window[(head+i)%depth].wait()
			}
			total.Add(n)
		}(w)
	}
	time.Sleep(dur)
	stop.Store(true)
	wg.Wait()
	elapsed := dur.Seconds()
	if srv != nil {
		srv.Close()
	}
	all := &latencyRecorder{}
	all.merge(lats...)
	raw := scenarioRaw{rec: all}
	out := ServeScenario{
		Name:      name,
		Requests:  total.Load(),
		OpsPerSec: float64(total.Load()) / elapsed,
		Latency:   all.summary(),
	}
	if srv != nil {
		st := srv.Stats()
		out.ReadEpochs, out.WriteEpochs = st.ReadEpochs, st.WriteEpochs
		out.CacheHits, out.CacheMisses = st.CacheHits, st.CacheMisses
		out.CacheAdmissions, out.DedupedKeys = st.CacheAdmissions, st.DedupedKeys
		out.MaxEpochKeys = st.MaxEpochKeys
		for op := range st.KeysExecuted {
			raw.execKeys += st.KeysExecuted[op]
		}
		if epochs := st.ReadEpochs + st.WriteEpochs; epochs > 0 {
			out.AvgEpochKeys = float64(raw.execKeys) / float64(epochs)
		}
		for _, op := range []serve.Op{serve.OpGet, serve.OpLCP, serve.OpSubtree} {
			raw.readKeys += st.KeysExecuted[op]
		}
		if st.DedupedKeys > 0 {
			out.DedupeRatio = float64(st.DedupedKeys) / float64(st.DedupedKeys+raw.readKeys)
		}
	}
	return out, raw
}

// mergePasses folds several passes of one configuration into a single
// record over their combined wall-clock: counters sum, the latency
// digest is recomputed over the pooled samples, and the derived ratios
// are recomputed from summed parts (a mean of per-pass ratios would
// weight short passes equally with long ones).
func mergePasses(name string, passes []ServeScenario, raws []scenarioRaw, totalSec float64) ServeScenario {
	out := ServeScenario{Name: name}
	all := &latencyRecorder{}
	var execd, reads uint64
	for i := range passes {
		p := &passes[i]
		out.Requests += p.Requests
		out.ReadEpochs += p.ReadEpochs
		out.WriteEpochs += p.WriteEpochs
		out.CacheHits += p.CacheHits
		out.CacheMisses += p.CacheMisses
		out.CacheAdmissions += p.CacheAdmissions
		out.DedupedKeys += p.DedupedKeys
		if p.MaxEpochKeys > out.MaxEpochKeys {
			out.MaxEpochKeys = p.MaxEpochKeys
		}
		all.merge(raws[i].rec)
		execd += raws[i].execKeys
		reads += raws[i].readKeys
	}
	out.OpsPerSec = float64(out.Requests) / totalSec
	if epochs := out.ReadEpochs + out.WriteEpochs; epochs > 0 {
		out.AvgEpochKeys = float64(execd) / float64(epochs)
	}
	if out.DedupedKeys > 0 {
		out.DedupeRatio = float64(out.DedupedKeys) / float64(out.DedupedKeys+reads)
	}
	out.Latency = all.summary()
	return out
}

// runServeSuite executes the serving scenarios and writes the JSON
// report to path ("-" for stdout-only).
func runServeSuite(sc experiments.Scale, conc, depth int, zipfS float64, dur, linger time.Duration, path string, pl *obsPlane) error {
	rep := ServeReport{
		Scale:       sc,
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		When:        time.Now().UTC().Format(time.RFC3339),
		Concurrency: conc,
		Depth:       depth,
		Zipf:        zipfS,
		DurationSec: dur.Seconds(),
		LingerSec:   linger.Seconds(),
	}
	fmt.Printf("serve: %d clients x depth %d, Zipf(%.2f), %v per scenario, linger %v, P=%d n=%d (GOMAXPROCS=%d)\n\n",
		conc, depth, zipfS, dur, linger, sc.P, sc.N, rep.GoMaxProcs)
	show := func(res ServeScenario) {
		fmt.Printf("%-20s %9.0f ops/s  p50 %8s  p99 %8s  epochs %d/%d  avg %5.1f keys/epoch  dedup %4.1f%%  cache %d/%d\n",
			res.Name, res.OpsPerSec,
			time.Duration(int64(res.Latency.P50Ns)).Round(time.Microsecond),
			time.Duration(int64(res.Latency.P99Ns)).Round(time.Microsecond),
			res.ReadEpochs, res.WriteEpochs, res.AvgEpochKeys, 100*res.DedupeRatio,
			res.CacheHits, res.CacheMisses)
	}
	run := func(name string, mode serveMode, d time.Duration) (ServeScenario, scenarioRaw) {
		return runServeScenario(name, mode, sc, conc, depth, zipfS, d, linger, pl)
	}

	naive, _ := run("naive-1key-batches", modeNaive, dur)
	show(naive)

	// Telemetry overhead: interleaved A/B pairs (see MetricsOverheadPct).
	// Each pass gets dur/passes so the pair together costs the same wall
	// clock as two plain scenarios; the published records merge the
	// passes back into full-duration equivalents. Which configuration
	// runs first alternates per pair (ABBA-style) so any monotone host
	// drift biases half the pairs one way and half the other, and every
	// timed pass starts from a collected heap.
	const overheadPasses = 5
	rep.OverheadPasses = overheadPasses
	passDur := dur / overheadPasses
	var plainP, metP []ServeScenario
	var plainR, metR []scenarioRaw
	var ratios []float64
	for i := 0; i < overheadPasses; i++ {
		var a, b ServeScenario
		var ar, br scenarioRaw
		if i%2 == 0 {
			runtime.GC()
			a, ar = run("coalesced", modeServe, passDur)
			runtime.GC()
			b, br = run("coalesced+metrics", modeMetrics, passDur)
		} else {
			runtime.GC()
			b, br = run("coalesced+metrics", modeMetrics, passDur)
			runtime.GC()
			a, ar = run("coalesced", modeServe, passDur)
		}
		plainP, plainR = append(plainP, a), append(plainR, ar)
		metP, metR = append(metP, b), append(metR, br)
		if a.OpsPerSec > 0 {
			ratios = append(ratios, b.OpsPerSec/a.OpsPerSec)
		}
	}
	passSec := float64(overheadPasses) * passDur.Seconds()
	coalesced := mergePasses("coalesced", plainP, plainR, passSec)
	withMetrics := mergePasses("coalesced+metrics", metP, metR, passSec)
	show(coalesced)
	show(withMetrics)
	if len(ratios) > 0 {
		sort.Float64s(ratios)
		rep.MetricsOverheadPct = 100 * (1 - ratios[len(ratios)/2])
	}

	cache, _ := run("coalesced+cache", modeCache, dur)
	show(cache)
	mixed, _ := run("mixed-writes", modeMixed, dur)
	show(mixed)
	rep.Results = []ServeScenario{naive, coalesced, withMetrics, cache, mixed}

	if naive.OpsPerSec > 0 {
		best := coalesced.OpsPerSec
		if cache.OpsPerSec > best {
			best = cache.OpsPerSec
		}
		rep.SpeedupVsNaive = best / naive.OpsPerSec
	}
	fmt.Printf("\nserving-layer speedup vs naive loop: %.2fx\n", rep.SpeedupVsNaive)
	fmt.Printf("telemetry-plane overhead: %.2f%% (median of %d interleaved pairs)\n\n",
		rep.MetricsOverheadPct, overheadPasses)
	if path == "" || path == "-" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
