package main

// The -serve-sweep suite (BENCH_PR7.json): one serving workload driven
// across the linger/epoch policy space — a static MaxLinger grid plus
// the adaptive epoch controller — so the report shows what each policy
// trades between throughput and tail latency at identical concurrency
// and skew, and where the controller lands against the best static
// point. The same file carries the host-probe microbenchmark: the
// flattened-trie batch probe against the pointer-chasing walk it
// replaces, at several batch sizes, measured on an index-scale trie.
// Together they are the PR's two claims in one artifact: host probes
// got faster, and the serve layer spends that speed where the load is.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"github.com/pimlab/pimtrie/internal/bitstr"
	"github.com/pimlab/pimtrie/internal/experiments"
	"github.com/pimlab/pimtrie/internal/trie"
	"github.com/pimlab/pimtrie/internal/workload"
)

// SweepPoint is one policy's measured serving record.
type SweepPoint struct {
	ServeScenario
	// LingerSec is the static max-linger of this point; meaningless when
	// Adaptive is set.
	LingerSec float64 `json:"linger_sec"`
	Adaptive  bool    `json:"adaptive,omitempty"`
}

// HostProbePoint compares the flattened-array batch probe against the
// pointer-chasing baseline at one batch size.
type HostProbePoint struct {
	BatchSize       int     `json:"batch_size"`
	PointerNsPerKey float64 `json:"pointer_ns_per_key"`
	FlatNsPerKey    float64 `json:"flat_ns_per_key"`
	Speedup         float64 `json:"speedup"`
}

// HostProbeReport is the host-probe-bound scenario: Get over a trie too
// big for cache, flat layout vs node pointers.
type HostProbeReport struct {
	TrieKeys    int              `json:"trie_keys"`
	LookupsEach int              `json:"lookups_each"`
	Points      []HostProbePoint `json:"points"`
	// BestSpeedup is the largest per-batch-size speedup — the headline
	// host-probe MLP gain.
	BestSpeedup float64 `json:"best_speedup"`
}

// PR6Baseline quotes the prior report's coalesced scenario for the
// delta columns.
type PR6Baseline struct {
	Source    string  `json:"source"`
	OpsPerSec float64 `json:"ops_per_sec"`
	P50Ns     float64 `json:"p50_ns"`
	P95Ns     float64 `json:"p95_ns"`
	P99Ns     float64 `json:"p99_ns"`
}

// SweepReport is the file format of -serve-sweep output.
type SweepReport struct {
	Scale       experiments.Scale `json:"scale"`
	GoMaxProcs  int               `json:"go_max_procs"`
	When        string            `json:"when"`
	Concurrency int               `json:"concurrency"`
	Depth       int               `json:"pipeline_depth"`
	Zipf        float64           `json:"zipf"`
	DurationSec float64           `json:"duration_sec"`
	Points      []SweepPoint      `json:"points"`
	HostProbe   HostProbeReport   `json:"host_probe"`
	Baseline    *PR6Baseline      `json:"baseline_pr6,omitempty"`
	// AdaptiveVsBestStatic compares the controller's ops/sec with the
	// best static linger point (1.0 = parity).
	AdaptiveVsBestStatic float64 `json:"adaptive_vs_best_static,omitempty"`
	// P50ReductionVsPR6Pct is 100·(1 − p50(best point)/p50(PR6
	// coalesced)) — the serve tail-latency claim against the prior PR's
	// report at the same concurrency, depth and skew.
	P50ReductionVsPR6Pct float64 `json:"p50_reduction_vs_pr6_pct,omitempty"`
	OpsGainVsPR6         float64 `json:"ops_gain_vs_pr6,omitempty"`
}

// loadPR6Baseline pulls the coalesced scenario out of a prior -serve
// report; a missing or malformed file just drops the delta columns.
func loadPR6Baseline(path string) *PR6Baseline {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil
	}
	var rep ServeReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil
	}
	for _, r := range rep.Results {
		if r.Name == "coalesced" {
			return &PR6Baseline{
				Source:    path,
				OpsPerSec: r.OpsPerSec,
				P50Ns:     r.Latency.P50Ns,
				P95Ns:     r.Latency.P95Ns,
				P99Ns:     r.Latency.P99Ns,
			}
		}
	}
	return nil
}

// runHostProbe measures flat vs pointer probes. The trie is built far
// past cache size so probes are DRAM-bound — the regime the flattened
// layout and interleaved batch loop exist for.
func runHostProbe(nkeys int, batchSizes []int) HostProbeReport {
	g := workload.New(11)
	keys := g.VarLen(nkeys, 48, 160)
	tr := trie.New()
	for i, k := range keys {
		tr.Insert(k, uint64(i))
	}
	flat := trie.Flatten(tr)

	// Query stream: stored keys in a scattered order plus a share of
	// misses, regenerated per batch size from the same seed so both
	// layouts see identical probes.
	const lookups = 1 << 18
	queries := make([]bitstr.String, lookups)
	stream := workload.NewKeyStream(keys, 7, 0)
	miss := g.FixedLen(lookups/8, 96)
	for i := range queries {
		if i%8 == 7 {
			queries[i] = miss[i/8]
		} else {
			queries[i] = stream.Next()
		}
	}

	rep := HostProbeReport{TrieKeys: nkeys, LookupsEach: lookups}
	for _, bs := range batchSizes {
		vals := make([]uint64, bs)
		found := make([]bool, bs)

		// Pointer-chasing baseline: one dependent-load walk per key.
		start := time.Now()
		var sinkP uint64
		for off := 0; off+bs <= lookups; off += bs {
			for _, q := range queries[off : off+bs] {
				v, ok := tr.Get(q)
				if ok {
					sinkP += v
				}
			}
		}
		ptrNs := float64(time.Since(start).Nanoseconds()) / float64(lookups/bs*bs)

		// Flattened batch probe: interleaved lanes over dense arrays.
		start = time.Now()
		var sinkF uint64
		for off := 0; off+bs <= lookups; off += bs {
			flat.GetBatch(queries[off:off+bs], vals, found)
			sinkF += vals[0]
		}
		flatNs := float64(time.Since(start).Nanoseconds()) / float64(lookups/bs*bs)
		if sinkF > sinkP+uint64(lookups) { // keep both sinks live
			fmt.Fprintln(os.Stderr, "host-probe: sink mismatch (benchmark only)")
		}

		p := HostProbePoint{BatchSize: bs, PointerNsPerKey: ptrNs, FlatNsPerKey: flatNs}
		if flatNs > 0 {
			p.Speedup = ptrNs / flatNs
		}
		if p.Speedup > rep.BestSpeedup {
			rep.BestSpeedup = p.Speedup
		}
		rep.Points = append(rep.Points, p)
		fmt.Printf("host-probe batch=%-5d pointer %6.1f ns/key  flat %6.1f ns/key  speedup %.2fx\n",
			bs, ptrNs, flatNs, p.Speedup)
	}
	return rep
}

// runServeSweep executes the policy sweep plus the host-probe scenario
// and writes the JSON report to path ("-" for stdout-only).
func runServeSweep(sc experiments.Scale, conc, depth int, zipfS float64, dur time.Duration, path, baselinePath string, pl *obsPlane) error {
	rep := SweepReport{
		Scale:       sc,
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		When:        time.Now().UTC().Format(time.RFC3339),
		Concurrency: conc,
		Depth:       depth,
		Zipf:        zipfS,
		DurationSec: dur.Seconds(),
		Baseline:    loadPR6Baseline(baselinePath),
	}
	fmt.Printf("serve-sweep: %d clients x depth %d, Zipf(%.2f), %v per point, P=%d n=%d (GOMAXPROCS=%d)\n\n",
		conc, depth, zipfS, dur, sc.P, sc.N, rep.GoMaxProcs)

	rep.HostProbe = runHostProbe(200_000, []int{8, 64, 256, 1024})
	fmt.Println()

	grid := []time.Duration{0, 100 * time.Microsecond, 250 * time.Microsecond, 500 * time.Microsecond, time.Millisecond}
	show := func(p SweepPoint) {
		policy := fmt.Sprintf("linger=%v", time.Duration(p.LingerSec*float64(time.Second)))
		if p.Adaptive {
			policy = "adaptive"
		}
		fmt.Printf("%-16s %9.0f ops/s  p50 %9s  p95 %9s  p99 %9s  avg %6.1f keys/epoch\n",
			policy, p.OpsPerSec,
			time.Duration(int64(p.Latency.P50Ns)).Round(time.Microsecond),
			time.Duration(int64(p.Latency.P95Ns)).Round(time.Microsecond),
			time.Duration(int64(p.Latency.P99Ns)).Round(time.Microsecond),
			p.AvgEpochKeys)
	}
	var bestStatic *SweepPoint
	for _, lg := range grid {
		runtime.GC()
		res, _ := runServeScenario(fmt.Sprintf("static-%v", lg), modeServe, sc, conc, depth, zipfS, dur, lg, pl)
		pt := SweepPoint{ServeScenario: res, LingerSec: lg.Seconds()}
		show(pt)
		rep.Points = append(rep.Points, pt)
		if bestStatic == nil || pt.OpsPerSec > bestStatic.OpsPerSec {
			last := rep.Points[len(rep.Points)-1]
			bestStatic = &last
		}
	}
	runtime.GC()
	ares, _ := runServeScenario("adaptive", modeAdaptive, sc, conc, depth, zipfS, dur, 0, pl)
	adaptive := SweepPoint{ServeScenario: ares, Adaptive: true}
	show(adaptive)
	rep.Points = append(rep.Points, adaptive)

	if bestStatic != nil && bestStatic.OpsPerSec > 0 {
		rep.AdaptiveVsBestStatic = adaptive.OpsPerSec / bestStatic.OpsPerSec
		fmt.Printf("\nadaptive vs best static (%v): %.2fx ops/sec\n",
			time.Duration(bestStatic.LingerSec*float64(time.Second)), rep.AdaptiveVsBestStatic)
	}
	if rep.Baseline != nil && rep.Baseline.P50Ns > 0 {
		best := adaptive
		for _, p := range rep.Points {
			if p.Latency.P50Ns < best.Latency.P50Ns && p.OpsPerSec >= rep.Baseline.OpsPerSec {
				best = p
			}
		}
		rep.P50ReductionVsPR6Pct = 100 * (1 - best.Latency.P50Ns/rep.Baseline.P50Ns)
		rep.OpsGainVsPR6 = best.OpsPerSec / rep.Baseline.OpsPerSec
		fmt.Printf("vs %s coalesced: p50 %.1f%% lower, ops/sec %.2fx\n",
			rep.Baseline.Source, rep.P50ReductionVsPR6Pct, rep.OpsGainVsPR6)
	}
	fmt.Printf("host-probe best speedup (flat vs pointer): %.2fx\n\n", rep.HostProbe.BestSpeedup)

	if path == "" || path == "-" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
