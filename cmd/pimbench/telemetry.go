package main

// Live telemetry wiring (-metrics-addr): one shared registry serves
// /metrics, /varz, /healthz and pprof for whichever suite is running.
// Experiment and -bench modes attach an obs.Monitor to every system
// they create (via the pim system hook, unless -trace claimed it);
// the -serve suite instead wires the registry into exactly one
// scenario ("coalesced+metrics"), keeping the other scenarios
// instrumentation-free so the report's overhead number compares
// metrics-on against a genuinely clean run.

import (
	"sync/atomic"

	"github.com/pimlab/pimtrie"
	"github.com/pimlab/pimtrie/internal/metrics"
	"github.com/pimlab/pimtrie/internal/serve"
	"github.com/pimlab/pimtrie/internal/telemetry"
)

// obsPlane is pimbench's process-wide observability state.
type obsPlane struct {
	reg *metrics.Registry
	// srv is the serve.Server currently feeding /healthz (the latest
	// metrics-instrumented scenario), nil before one exists.
	srv atomic.Pointer[serve.Server]
}

// health backs /healthz: green until a serving scenario exists, then
// that server's post-epoch sample.
func (pl *obsPlane) health() pimtrie.Health {
	if s := pl.srv.Load(); s != nil {
		return s.Health()
	}
	return pimtrie.Health{}
}

// startTelemetry binds addr and returns the plane plus the HTTP server
// (close it on exit).
func startTelemetry(addr string) (*obsPlane, *telemetry.Server, error) {
	pl := &obsPlane{reg: metrics.NewRegistry()}
	ts, err := telemetry.Start(telemetry.Options{Addr: addr, Registry: pl.reg, Health: pl.health})
	if err != nil {
		return nil, nil, err
	}
	return pl, ts, nil
}
