package main

import (
	"testing"
	"time"
)

// TestLatencySummaryEdges pins the nearest-rank percentile semantics,
// including the tiny-sample and p100 edges the previous truncation rule
// got wrong (a p95 of 10 samples must be the maximum, not the 9th).
func TestLatencySummaryEdges(t *testing.T) {
	mk := func(ns ...int64) *latencyRecorder {
		l := &latencyRecorder{}
		for _, v := range ns {
			l.observe(time.Duration(v))
		}
		return l
	}

	if s := (&latencyRecorder{}).summary(); s.Count != 0 || s.MaxNs != 0 {
		t.Errorf("empty summary = %+v", s)
	}

	// One sample: every percentile is that sample.
	s := mk(42).summary()
	if s.P50Ns != 42 || s.P99Ns != 42 || s.P999Ns != 42 || s.MaxNs != 42 {
		t.Errorf("n=1 summary = %+v, want all 42", s)
	}

	// Two samples: p50 is the first (rank ceil(0.5*2)=1), upper tail the
	// second.
	s = mk(10, 20).summary()
	if s.P50Ns != 10 || s.P95Ns != 20 || s.MaxNs != 20 {
		t.Errorf("n=2 summary = %+v, want p50=10 p95=20 max=20", s)
	}

	// Three samples: p50 is the middle, p99 the last.
	s = mk(30, 10, 20).summary()
	if s.P50Ns != 20 || s.P99Ns != 30 {
		t.Errorf("n=3 summary = %+v, want p50=20 p99=30", s)
	}

	// Ten samples: nearest-rank p95 = ceil(9.5) = 10th sample — the old
	// int(q*(n-1)) rule returned the 9th.
	vals := make([]int64, 0, 10)
	for i := int64(1); i <= 10; i++ {
		vals = append(vals, i*100)
	}
	s = mk(vals...).summary()
	if s.P95Ns != 1000 {
		t.Errorf("n=10 p95 = %v, want 1000 (nearest rank)", s.P95Ns)
	}
	if s.P50Ns != 500 {
		t.Errorf("n=10 p50 = %v, want 500", s.P50Ns)
	}
	if s.MaxNs != 1000 || s.P999Ns != 1000 {
		t.Errorf("n=10 tail = %+v, want max=p999=1000", s)
	}

	// Merge gathers every worker's samples before digesting.
	a, b := mk(1, 2), mk(3)
	a.merge(b)
	if s := a.summary(); s.Count != 3 || s.MaxNs != 3 {
		t.Errorf("merged summary = %+v", s)
	}
}
