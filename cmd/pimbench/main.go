// Command pimbench regenerates every table and figure of the PIM-trie
// paper's evaluation (DESIGN.md §3 maps each experiment to its paper
// artifact). Results are PIM Model metrics measured on the simulator.
//
// Usage:
//
//	pimbench                         # run everything at the default scale
//	pimbench -exp E2,E7              # run selected experiments
//	pimbench -p 64 -n 50000 -batch 4096 -seed 7
//	pimbench -list                   # list experiment IDs
//	pimbench -exp E2 -trace t.jsonl  # phase-attributed trace (pimtrie-trace reads it)
//	pimbench -faults                 # fault-injection/recovery experiment (EF)
//	pimbench -json results.json      # machine-readable tables
//	pimbench -bench BENCH.json       # wall-clock suite (ns/op, allocs/op, rounds/s)
//	pimbench -bench - -cpuprofile cpu.pprof -memprofile mem.pprof
//	pimbench -serve BENCH_PR5.json -conc 64 -zipf 1.0   # concurrent serving suite
//	pimbench -serve-read BENCH_PR10.json             # strong vs snapshot read paths
//	pimbench -durable BENCH_PR9.json                 # WAL fsync-policy overhead
//	pimbench -restart-chaos 8                        # SIGKILL + bit-exact recovery
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/pimlab/pimtrie/internal/experiments"
	"github.com/pimlab/pimtrie/internal/obs"
	"github.com/pimlab/pimtrie/internal/pim"
)

var registry = []struct {
	id, what string
	run      func(experiments.Scale) experiments.Table
}{
	{"E1", "Table 1 space column", experiments.SpaceTable},
	{"E2", "Table 1 IO rounds (LCP)", experiments.RoundsLCP},
	{"E2b", "rounds/IO-time vs P", experiments.RoundsVsP},
	{"E3", "Table 1 IO rounds (Insert/Delete)", experiments.RoundsUpdate},
	{"E4", "Table 1 IO rounds (Subtree)", experiments.RoundsSubtree},
	{"E5", "Table 1 communication (LCP/Insert)", experiments.CommPerOp},
	{"E6", "Table 1 communication (Subtree)", experiments.CommSubtree},
	{"E7", "skew resistance (query skew)", experiments.SkewBalance},
	{"E7b", "skew resistance (data skew)", experiments.SkewedDataBalance},
	{"E8", "Theorem 4.3 bound check", experiments.TheoremBounds},
	{"E9a", "ablation: block size", experiments.AblationBlockSize},
	{"E9b", "ablation: push-pull threshold", experiments.AblationPushPull},
	{"E9c", "ablation: hash width", experiments.AblationHashWidth},
	{"E9d", "ablation: region size", experiments.AblationRegionSize},
	{"E9e", "ablation: pivot probing", experiments.AblationPivotProbing},
	{"EF", "fault injection: module-loss recovery", experiments.FaultRecovery},
}

// traceCollector attaches an obs.Tracer to every system an experiment
// creates (via the pim system hook) and remembers them for export.
type traceCollector struct {
	mu      sync.Mutex
	exp     string // current experiment ID, set by the run loop
	n       int    // systems seen within the current experiment
	tracers []*obs.Tracer
}

func (c *traceCollector) setExperiment(id string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.exp, c.n = id, 0
}

func (c *traceCollector) hook(sys *pim.System) {
	c.mu.Lock()
	defer c.mu.Unlock()
	label := fmt.Sprintf("%s/sys%02d", c.exp, c.n)
	c.n++
	c.tracers = append(c.tracers, obs.Attach(sys, label))
}

func (c *traceCollector) export(path string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	for _, t := range c.tracers {
		t.Detach()
		d := t.Data()
		if err := d.Check(); err != nil {
			f.Close()
			return fmt.Errorf("trace %s failed self-check: %w", t.Label(), err)
		}
		if err := d.WriteJSONL(f); err != nil {
			f.Close()
			return err
		}
	}
	return f.Close()
}

func main() {
	var (
		exps  = flag.String("exp", "", "comma-separated experiment IDs (default: all)")
		list  = flag.Bool("list", false, "list experiment IDs and exit")
		p     = flag.Int("p", experiments.DefaultScale.P, "number of PIM modules")
		n     = flag.Int("n", experiments.DefaultScale.N, "stored keys")
		batch = flag.Int("batch", experiments.DefaultScale.Batch, "queries per batch")
		seed  = flag.Int64("seed", experiments.DefaultScale.Seed, "workload/placement seed")
		flts  = flag.Bool("faults", false, "run the fault-injection/recovery experiment (shorthand for -exp EF)")
		trace = flag.String("trace", "", "write a phase-attributed JSONL trace of every system to this path")
		jsonP = flag.String("json", "", "write machine-readable results (experiment id -> table) to this path")
		bench = flag.String("bench", "", "run the wall-clock benchmark suite and write a JSON report to this path (\"-\" for stdout only)")
		srvP  = flag.String("serve", "", "run the concurrent-serving benchmark and write a JSON report to this path (\"-\" for stdout only)")
		srdP  = flag.String("serve-read", "", "run the read-path benchmark (read-mix x consistency-mode x clients grid) and write a JSON report to this path (\"-\" for stdout only)")
		durbP = flag.String("durable", "", "run the write-durability benchmark (WAL fsync policies vs non-durable baseline) and write a JSON report to this path (\"-\" for stdout only)")
		walD  = flag.String("wal-dir", "", "durability: directory for write-ahead-log state (default: a temp dir)")
		walS  = flag.String("wal-sync", "interval", "durability: WAL fsync policy — epoch, interval or off")
		chaoN = flag.Int("restart-chaos", 0, "run this many crash-restart chaos rounds (SIGKILL a serving child, verify bit-exact recovery) and exit")
		chaoC = flag.Bool("restart-chaos-child", false, "internal: run as the -restart-chaos serving child")
		swpP  = flag.String("serve-sweep", "", "sweep the linger/epoch policy space (static grid + adaptive controller) plus the host-probe scenario; write a JSON report to this path (\"-\" for stdout only)")
		shdP  = flag.String("shards", "", "run the sharded scale-out benchmark (scaling curve + hot-range migration) and write a JSON report to this path (\"-\" for stdout only)")
		shdC  = flag.String("shard-counts", "1,2,4,8", "-shards: comma-separated shard counts of the scaling curve")
		swpB  = flag.String("sweep-baseline", "BENCH_PR6.json", "-serve-sweep: prior -serve report to quote as the delta baseline")
		conc  = flag.Int("conc", 64, "-serve: closed-loop client goroutines")
		depth = flag.Int("depth", 32, "-serve: async requests each client keeps in flight (naive baseline always 1)")
		zipfS = flag.Float64("zipf", 1.0, "-serve: Zipf exponent of the key stream (0 = uniform; values <= 1 clamp to 1.01)")
		dur   = flag.Duration("dur", 2*time.Second, "-serve: measured duration per scenario")
		lngr  = flag.Duration("linger", 200*time.Microsecond, "-serve: Server max-linger (group-commit window)")
		cpuP  = flag.String("cpuprofile", "", "write a CPU profile of the run to this path (analyze with go tool pprof)")
		memP  = flag.String("memprofile", "", "write an allocation profile of the run to this path")
		maddr = flag.String("metrics-addr", "", "serve live telemetry (/metrics, /varz, /healthz, /debug/pprof) on this address while the run lasts")
	)
	flag.Parse()

	if *chaoC {
		// Chaos child: never returns on the happy path — the parent kills it.
		err := runChaosChild(*walD, *p, *seed, *walS)
		fmt.Fprintf(os.Stderr, "pimbench: chaos child: %v\n", err)
		os.Exit(1)
	}
	if *chaoN > 0 {
		if err := runChaosParent(*chaoN, *walD, *p, *seed, *walS); err != nil {
			fmt.Fprintf(os.Stderr, "pimbench: restart-chaos: %v\n", err)
			os.Exit(1)
		}
		return
	}

	var plane *obsPlane
	if *maddr != "" {
		pl, ts, err := startTelemetry(*maddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pimbench: %v\n", err)
			os.Exit(1)
		}
		plane = pl
		fmt.Printf("telemetry: http://%s/metrics (also /varz, /healthz, /debug/pprof)\n", ts.Addr())
		defer ts.Close()
	}
	if plane != nil && *trace == "" && *srvP == "" {
		// Outside the serving suite, observe every system the run creates.
		// -trace claims the hook for the Tracer instead (full round log
		// beats live counters when both are asked for).
		pim.SetSystemHook(func(sys *pim.System) {
			sys.SetRecorder(obs.NewMonitor(plane.reg, sys.P()))
		})
		defer pim.SetSystemHook(nil)
	}

	if *cpuP != "" {
		f, err := os.Create(*cpuP)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pimbench: cpuprofile: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "pimbench: cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memP != "" {
		defer func() {
			f, err := os.Create(*memP)
			if err != nil {
				fmt.Fprintf(os.Stderr, "pimbench: memprofile: %v\n", err)
				os.Exit(1)
			}
			runtime.GC() // flush the final allocation state before snapshotting
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintf(os.Stderr, "pimbench: memprofile: %v\n", err)
				os.Exit(1)
			}
			f.Close()
		}()
	}

	if *bench != "" {
		sc := experiments.Scale{P: *p, N: *n, Batch: *batch, Seed: *seed}
		if err := runBenchSuite(sc, *bench); err != nil {
			fmt.Fprintf(os.Stderr, "pimbench: bench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *durbP != "" {
		sc := experiments.Scale{P: *p, N: *n, Batch: *batch, Seed: *seed}
		if err := runDurableSuite(sc, *conc, *depth, *dur, *walD, *durbP); err != nil {
			fmt.Fprintf(os.Stderr, "pimbench: durable: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *srdP != "" {
		sc := experiments.Scale{P: *p, N: *n, Batch: *batch, Seed: *seed}
		if err := runServeReadSuite(sc, *depth, *zipfS, *dur, *lngr, *srdP); err != nil {
			fmt.Fprintf(os.Stderr, "pimbench: serve-read: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *srvP != "" {
		sc := experiments.Scale{P: *p, N: *n, Batch: *batch, Seed: *seed}
		if err := runServeSuite(sc, *conc, *depth, *zipfS, *dur, *lngr, *srvP, plane); err != nil {
			fmt.Fprintf(os.Stderr, "pimbench: serve: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *swpP != "" {
		sc := experiments.Scale{P: *p, N: *n, Batch: *batch, Seed: *seed}
		if err := runServeSweep(sc, *conc, *depth, *zipfS, *dur, *swpP, *swpB, plane); err != nil {
			fmt.Fprintf(os.Stderr, "pimbench: serve-sweep: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *shdP != "" {
		sc := experiments.Scale{P: *p, N: *n, Batch: *batch, Seed: *seed}
		var counts []int
		for _, s := range strings.Split(*shdC, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || v < 1 {
				fmt.Fprintf(os.Stderr, "pimbench: bad -shard-counts entry %q\n", s)
				os.Exit(1)
			}
			counts = append(counts, v)
		}
		if err := runShardSuite(sc, *conc, *depth, *zipfS, *dur, *lngr, counts, *shdP); err != nil {
			fmt.Fprintf(os.Stderr, "pimbench: shards: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *list {
		for _, e := range registry {
			fmt.Printf("%-4s %s\n", e.id, e.what)
		}
		return
	}
	want := map[string]bool{}
	if *exps != "" {
		for _, id := range strings.Split(*exps, ",") {
			want[strings.TrimSpace(id)] = true
		}
	}
	if *flts {
		// -faults alone selects just EF; with -exp it adds EF to the list.
		want["EF"] = true
	}

	var collector *traceCollector
	if *trace != "" {
		collector = &traceCollector{}
		pim.SetSystemHook(collector.hook)
		defer pim.SetSystemHook(nil)
	}

	sc := experiments.Scale{P: *p, N: *n, Batch: *batch, Seed: *seed}
	fmt.Printf("pimbench: P=%d n=%d batch=%d seed=%d\n\n", sc.P, sc.N, sc.Batch, sc.Seed)
	ran := 0
	var tables []experiments.Table
	for _, e := range registry {
		if len(want) > 0 && !want[e.id] {
			continue
		}
		if collector != nil {
			collector.setExperiment(e.id)
		}
		start := time.Now()
		tb := e.run(sc)
		fmt.Print(tb.Format())
		fmt.Printf("(%s in %v)\n\n", e.id, time.Since(start).Round(time.Millisecond))
		tables = append(tables, tb)
		ran++
	}
	if ran == 0 {
		fmt.Fprintln(os.Stderr, "pimbench: no experiment matched -exp; try -list")
		os.Exit(2)
	}
	if collector != nil {
		if err := collector.export(*trace); err != nil {
			fmt.Fprintf(os.Stderr, "pimbench: writing trace: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("trace: %d system(s) written to %s (analyze with pimtrie-trace)\n", len(collector.tracers), *trace)
	}
	if *jsonP != "" {
		f, err := os.Create(*jsonP)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pimbench: %v\n", err)
			os.Exit(1)
		}
		if err := experiments.WriteResultsJSON(f, tables); err != nil {
			fmt.Fprintf(os.Stderr, "pimbench: writing results: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "pimbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("results: %d table(s) written to %s\n", len(tables), *jsonP)
	}
}
