// Command pimbench regenerates every table and figure of the PIM-trie
// paper's evaluation (DESIGN.md §3 maps each experiment to its paper
// artifact). Results are PIM Model metrics measured on the simulator.
//
// Usage:
//
//	pimbench                         # run everything at the default scale
//	pimbench -exp E2,E7              # run selected experiments
//	pimbench -p 64 -n 50000 -batch 4096 -seed 7
//	pimbench -list                   # list experiment IDs
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/pimlab/pimtrie/internal/experiments"
)

var registry = []struct {
	id, what string
	run      func(experiments.Scale) experiments.Table
}{
	{"E1", "Table 1 space column", experiments.SpaceTable},
	{"E2", "Table 1 IO rounds (LCP)", experiments.RoundsLCP},
	{"E2b", "rounds/IO-time vs P", experiments.RoundsVsP},
	{"E3", "Table 1 IO rounds (Insert/Delete)", experiments.RoundsUpdate},
	{"E4", "Table 1 IO rounds (Subtree)", experiments.RoundsSubtree},
	{"E5", "Table 1 communication (LCP/Insert)", experiments.CommPerOp},
	{"E6", "Table 1 communication (Subtree)", experiments.CommSubtree},
	{"E7", "skew resistance (query skew)", experiments.SkewBalance},
	{"E7b", "skew resistance (data skew)", experiments.SkewedDataBalance},
	{"E8", "Theorem 4.3 bound check", experiments.TheoremBounds},
	{"E9a", "ablation: block size", experiments.AblationBlockSize},
	{"E9b", "ablation: push-pull threshold", experiments.AblationPushPull},
	{"E9c", "ablation: hash width", experiments.AblationHashWidth},
	{"E9d", "ablation: region size", experiments.AblationRegionSize},
	{"E9e", "ablation: pivot probing", experiments.AblationPivotProbing},
}

func main() {
	var (
		exps  = flag.String("exp", "", "comma-separated experiment IDs (default: all)")
		list  = flag.Bool("list", false, "list experiment IDs and exit")
		p     = flag.Int("p", experiments.DefaultScale.P, "number of PIM modules")
		n     = flag.Int("n", experiments.DefaultScale.N, "stored keys")
		batch = flag.Int("batch", experiments.DefaultScale.Batch, "queries per batch")
		seed  = flag.Int64("seed", experiments.DefaultScale.Seed, "workload/placement seed")
	)
	flag.Parse()

	if *list {
		for _, e := range registry {
			fmt.Printf("%-4s %s\n", e.id, e.what)
		}
		return
	}
	want := map[string]bool{}
	if *exps != "" {
		for _, id := range strings.Split(*exps, ",") {
			want[strings.TrimSpace(id)] = true
		}
	}
	sc := experiments.Scale{P: *p, N: *n, Batch: *batch, Seed: *seed}
	fmt.Printf("pimbench: P=%d n=%d batch=%d seed=%d\n\n", sc.P, sc.N, sc.Batch, sc.Seed)
	ran := 0
	for _, e := range registry {
		if len(want) > 0 && !want[e.id] {
			continue
		}
		start := time.Now()
		tb := e.run(sc)
		fmt.Print(tb.Format())
		fmt.Printf("(%s in %v)\n\n", e.id, time.Since(start).Round(time.Millisecond))
		ran++
	}
	if ran == 0 {
		fmt.Fprintln(os.Stderr, "pimbench: no experiment matched -exp; try -list")
		os.Exit(2)
	}
}
