package main

// Wall-clock benchmark harness (-bench): measures what the PIM Model
// deliberately abstracts away — the simulator's real execution speed on
// the host machine. Every benchmark here reports ns/op, allocs/op and
// rounds/s so each perf PR leaves a recorded trajectory (BENCH_PR*.json)
// next to the model-metric artifacts the experiments produce.
//
// The suite is driven through testing.Benchmark, which is callable from
// a normal binary; each entry is the DefaultScale twin of the Op
// benchmarks in bench_test.go plus a raw engine fan-out benchmark that
// isolates pim.System.Round dispatch overhead from index work.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"github.com/pimlab/pimtrie"
	"github.com/pimlab/pimtrie/internal/experiments"
	"github.com/pimlab/pimtrie/internal/pim"
	"github.com/pimlab/pimtrie/internal/workload"
)

// BenchResult is one benchmark's wall-clock record.
type BenchResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	// RoundsPerSec is BSP rounds executed per wall-clock second during
	// the timed section (0 for benchmarks that do not expose a system).
	RoundsPerSec float64 `json:"rounds_per_sec"`
	// Latency digests per-iteration wall time for the Op* benchmarks
	// (zero for the engine micro-benchmarks, where per-round timing would
	// itself dominate the measurement).
	Latency LatencySummary `json:"latency"`
}

// BenchReport is the file format of -bench output (and of the checked-in
// BENCH_PR*.json "before"/"after" sections).
type BenchReport struct {
	Scale      experiments.Scale `json:"scale"`
	GoMaxProcs int               `json:"go_max_procs"`
	When       string            `json:"when"`
	Results    []BenchResult     `json:"results"`
}

// benchCase is one harness entry: run executes the workload b.N times
// and returns the number of BSP rounds executed inside the timed loop
// (0 when rounds are not meaningful for the benchmark).
type benchCase struct {
	name string
	run  func(b *testing.B, sc experiments.Scale, lat *latencyRecorder) int64
}

func opIndex(sc experiments.Scale, seed int64) (*pimtrie.Index, []pimtrie.Key, *workload.Gen) {
	g := workload.New(seed)
	keys := g.VarLen(sc.N, 48, 192)
	idx := pimtrie.New(sc.P, pimtrie.Options{Seed: seed})
	idx.Load(keys, g.Values(len(keys)))
	return idx, keys, g
}

var benchCases = []benchCase{
	{"OpLCPBatch", func(b *testing.B, sc experiments.Scale, lat *latencyRecorder) int64 {
		idx, keys, g := opIndex(sc, 1)
		queries := g.PrefixQueries(keys, sc.Batch, 16)
		before := idx.Metrics().Rounds
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			lat.time(func() { idx.LCP(queries) })
		}
		return idx.Metrics().Rounds - before
	}},
	{"OpGetBatch", func(b *testing.B, sc experiments.Scale, lat *latencyRecorder) int64 {
		idx, keys, g := opIndex(sc, 2)
		queries := g.Zipf(keys, sc.Batch, 1.2)
		before := idx.Metrics().Rounds
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			lat.time(func() { idx.Get(queries) })
		}
		return idx.Metrics().Rounds - before
	}},
	{"OpInsertDeleteBatch", func(b *testing.B, sc experiments.Scale, lat *latencyRecorder) int64 {
		idx, _, g := opIndex(sc, 3)
		fresh := g.FixedLen(sc.Batch, 128)
		values := g.Values(len(fresh))
		before := idx.Metrics().Rounds
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			lat.time(func() {
				idx.Insert(fresh, values)
				idx.Delete(fresh)
			})
		}
		return idx.Metrics().Rounds - before
	}},
	{"OpSubtreeBatch", func(b *testing.B, sc experiments.Scale, lat *latencyRecorder) int64 {
		g := workload.New(4)
		keys := g.SharedPrefix(sc.N, 24, 96)
		idx := pimtrie.New(sc.P, pimtrie.Options{Seed: 4})
		idx.Load(keys, g.Values(len(keys)))
		prefixes := make([]pimtrie.Key, 16)
		for i := range prefixes {
			prefixes[i] = keys[i*7%len(keys)].Prefix(32)
		}
		before := idx.Metrics().Rounds
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			lat.time(func() { idx.Subtrees(prefixes) })
		}
		return idx.Metrics().Rounds - before
	}},
	{"OpBulkLoad", func(b *testing.B, sc experiments.Scale, lat *latencyRecorder) int64 {
		g := workload.New(5)
		keys := g.VarLen(sc.N, 48, 192)
		values := g.Values(len(keys))
		var rounds int64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			lat.time(func() {
				idx := pimtrie.New(sc.P, pimtrie.Options{Seed: 5})
				idx.Load(keys, values)
				rounds += idx.Metrics().Rounds
			})
		}
		return rounds
	}},
	// RoundFanout isolates the engine: one round of Batch trivial tasks
	// spread over the modules, repeated. Dispatch, bucketing and
	// accounting dominate; module programs are a single Work(1).
	{"RoundFanout", func(b *testing.B, sc experiments.Scale, _ *latencyRecorder) int64 {
		sys := pim.NewSystem(sc.P, pim.WithSeed(9))
		tasks := make([]pim.Task, sc.Batch)
		for i := range tasks {
			tasks[i] = pim.Task{
				Module:    i % sc.P,
				SendWords: 1,
				Run: func(m *pim.Module) pim.Resp {
					m.Work(1)
					return pim.Resp{RecvWords: 1}
				},
			}
		}
		before := sys.Metrics().Rounds
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sys.Round(tasks)
		}
		return sys.Metrics().Rounds - before
	}},
	// RoundSparse drives many near-empty rounds (one task each), the
	// pattern of pointer-chasing baselines and maintenance cascades.
	{"RoundSparse", func(b *testing.B, sc experiments.Scale, _ *latencyRecorder) int64 {
		sys := pim.NewSystem(sc.P, pim.WithSeed(10))
		task := []pim.Task{{
			Module:    1,
			SendWords: 1,
			Run: func(m *pim.Module) pim.Resp {
				m.Work(1)
				return pim.Resp{RecvWords: 1}
			},
		}}
		before := sys.Metrics().Rounds
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sys.Round(task)
		}
		return sys.Metrics().Rounds - before
	}},
}

// runBenchSuite executes the harness at the given scale and writes the
// JSON report to path ("-" for stdout-only).
func runBenchSuite(sc experiments.Scale, path string) error {
	rep := BenchReport{
		Scale:      sc,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		When:       time.Now().UTC().Format(time.RFC3339),
	}
	fmt.Printf("bench: wall-clock suite at P=%d n=%d batch=%d (GOMAXPROCS=%d)\n\n",
		sc.P, sc.N, sc.Batch, rep.GoMaxProcs)
	for _, bc := range benchCases {
		bc := bc
		var rounds int64
		var lat *latencyRecorder
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			lat = &latencyRecorder{} // only the final (timed) run's samples survive
			rounds = bc.run(b, sc, lat)
		})
		r := BenchResult{
			Name:        bc.name,
			Iterations:  res.N,
			NsPerOp:     float64(res.T.Nanoseconds()) / float64(res.N),
			AllocsPerOp: res.AllocsPerOp(),
			BytesPerOp:  res.AllocedBytesPerOp(),
			Latency:     lat.summary(),
		}
		if rounds > 0 && res.T > 0 {
			r.RoundsPerSec = float64(rounds) / res.T.Seconds()
		}
		rep.Results = append(rep.Results, r)
		fmt.Printf("%-22s %10d iter  %14.0f ns/op  %9d allocs/op  %12.0f rounds/s  p99 %s\n",
			r.Name, r.Iterations, r.NsPerOp, r.AllocsPerOp, r.RoundsPerSec,
			time.Duration(int64(r.Latency.P99Ns)).Round(time.Microsecond))
	}
	fmt.Println()
	if path == "" || path == "-" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
