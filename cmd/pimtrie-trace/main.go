// Command pimtrie-trace analyzes phase-attributed JSONL traces written
// by `pimbench -trace` (or any obs.Trace export). For every trace
// section it prints the per-phase cost breakdown, the hottest modules,
// and per-phase IO/work balance; -timeline adds the round-by-round IO
// log with span attribution.
//
// Usage:
//
//	pimbench -exp E2 -trace t.jsonl
//	pimtrie-trace t.jsonl                 # per-phase breakdown + skew summary
//	pimtrie-trace -timeline t.jsonl       # plus round-by-round timeline
//	pimtrie-trace -check t.jsonl          # verify conservation; exit 1 on mismatch
//	pimtrie-trace -top 10 t.jsonl         # more hot modules
//	pimtrie-trace -label E2/sys00 t.jsonl # one section only
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"github.com/pimlab/pimtrie/internal/metrics"
	"github.com/pimlab/pimtrie/internal/obs"
)

func main() {
	var (
		top      = flag.Int("top", 5, "hottest modules to list per trace")
		timeline = flag.Bool("timeline", false, "print the round-by-round IO timeline")
		check    = flag.Bool("check", false, "verify conservation laws; exit nonzero on any mismatch")
		label    = flag.String("label", "", "only analyze trace sections whose label contains this substring")
	)
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: pimtrie-trace [-top k] [-timeline] [-check] [-label substr] <trace.jsonl>...")
		os.Exit(2)
	}

	var traces []*obs.Trace
	for _, path := range flag.Args() {
		var r io.Reader
		if path == "-" {
			r = os.Stdin
		} else {
			f, err := os.Open(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "pimtrie-trace: %v\n", err)
				os.Exit(1)
			}
			r = f
			defer f.Close()
		}
		ts, err := obs.ReadJSONL(r)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pimtrie-trace: %s: %v\n", path, err)
			os.Exit(1)
		}
		traces = append(traces, ts...)
	}

	failed := 0
	shown := 0
	for _, tr := range traces {
		if *label != "" && !strings.Contains(tr.Label, *label) {
			continue
		}
		shown++
		if err := report(tr, *top, *timeline, *check); err != nil {
			fmt.Fprintf(os.Stderr, "pimtrie-trace: %s: %v\n", tr.Label, err)
			failed++
		}
	}
	if shown == 0 {
		fmt.Fprintln(os.Stderr, "pimtrie-trace: no trace section matched")
		os.Exit(1)
	}
	if failed > 0 {
		os.Exit(1)
	}
}

func report(tr *obs.Trace, top int, timeline, check bool) error {
	fmt.Printf("== trace %s (P=%d, %d spans, %d rounds) ==\n", tr.Label, tr.P, len(tr.Spans), len(tr.Rounds))
	if check {
		if err := tr.Check(); err != nil {
			return err
		}
		fmt.Println("check: spans + unattributed == total == system delta ✓")
	}

	stats := tr.PhaseStats()
	rows := [][]string{{"phase", "spans", "rounds", "io-time", "io-words", "pim-time", "pim-work", "cpu-work", "io-bal", "wrk-bal"}}
	for _, st := range stats {
		rows = append(rows, []string{
			st.Path, itoa(st.Spans), i64(st.M.Rounds), i64(st.M.IOTime), i64(st.M.IOWords),
			i64(st.M.PIMTime), i64(st.M.PIMWork), i64(st.M.CPUWork),
			bal(st.M.IOBalance()), bal(st.M.WorkBalance()),
		})
	}
	rows = append(rows, []string{
		"TOTAL", "", i64(tr.Total.Rounds), i64(tr.Total.IOTime), i64(tr.Total.IOWords),
		i64(tr.Total.PIMTime), i64(tr.Total.PIMWork), i64(tr.Total.CPUWork),
		bal(tr.Total.IOBalance()), bal(tr.Total.WorkBalance()),
	})
	printAligned(rows)

	// Module-loss recovery summary: everything attributed to "recover"
	// span subtrees (present only in fault-injected runs).
	var rec struct {
		repairs                 int
		rounds, ioTime, ioWords int64
	}
	for _, st := range stats {
		base := st.Path == "recover" || strings.HasSuffix(st.Path, "/recover")
		inside := strings.HasPrefix(st.Path, "recover/") || strings.Contains(st.Path, "/recover/")
		if base {
			rec.repairs += st.Spans
		}
		if base || inside {
			rec.rounds += st.M.Rounds
			rec.ioTime += st.M.IOTime
			rec.ioWords += st.M.IOWords
		}
	}
	if rec.repairs > 0 {
		fmt.Printf("recovery: %d repair(s), %d rounds, io-time %d, io-words %d (%.1f%% of total io-time)\n",
			rec.repairs, rec.rounds, rec.ioTime, rec.ioWords,
			100*float64(rec.ioTime)/float64(max64(tr.Total.IOTime, 1)))
	}

	hot := tr.HotModules(top)
	var totIO int64
	for _, v := range tr.Total.PerModuleIO {
		totIO += v
	}
	fmt.Printf("hottest modules (of %d):", tr.P)
	for _, h := range hot {
		share := 0.0
		if totIO > 0 {
			share = 100 * float64(h.IO) / float64(totIO)
		}
		fmt.Printf("  m%d io=%d (%.1f%%) work=%d", h.Module, h.IO, share, h.Work)
	}
	fmt.Println()

	// Whole-trace skew coefficients, in the same vocabulary the live
	// imbalance gauges (pimtrie_pim_*_imbalance_*) report: max/mean is
	// the paper's balance factor (1 = balanced, P = fully serialized),
	// CV the coefficient of variation across modules.
	ioMM, ioCV := metrics.Imbalance(tr.Total.PerModuleIO)
	wrkMM, wrkCV := metrics.Imbalance(tr.Total.PerModuleWrk)
	fmt.Printf("imbalance: io max/mean=%.2f cv=%.3f   work max/mean=%.2f cv=%.3f\n",
		ioMM, ioCV, wrkMM, wrkCV)

	if timeline {
		fmt.Println("timeline (round: phase tasks modules send recv max-io max-work):")
		for i := range tr.Rounds {
			r := &tr.Rounds[i]
			path := r.Path
			if path == "" {
				path = obs.UnattributedPath
			}
			fmt.Printf("  %5d  %-28s t=%-5d m=%-4d s=%-7d r=%-7d io=%-6d w=%d\n",
				r.Index, path, r.Tasks, r.Modules, r.SendWords, r.RecvWords, r.MaxIO, r.MaxWork)
		}
	}
	fmt.Println()
	return nil
}

func i64(v int64) string { return fmt.Sprintf("%d", v) }
func itoa(v int) string  { return fmt.Sprintf("%d", v) }

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// bal formats a balance ratio, blank when the phase moved no data.
func bal(v float64) string {
	if v == 0 {
		return "-"
	}
	return fmt.Sprintf("%.2f", v)
}

func printAligned(rows [][]string) {
	widths := make([]int, len(rows[0]))
	for _, row := range rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	for _, row := range rows {
		var b strings.Builder
		for i, c := range row {
			pad := widths[i]
			if i == 0 {
				fmt.Fprintf(&b, "%-*s  ", pad, c)
			} else {
				fmt.Fprintf(&b, "%*s  ", pad, c)
			}
		}
		fmt.Println(strings.TrimRight(b.String(), " "))
	}
}
