// Command benchguard compares two `go test -bench` outputs and fails
// when any benchmark present in both regressed in throughput by more
// than a threshold. It is the CI regression gate: the workflow runs the
// benchmark suite on the base commit and on the head, then lets
// benchguard decide whether the head may merge.
//
//	go test -bench . -count 3 -run '^$' . > old.txt   # on base
//	go test -bench . -count 3 -run '^$' . > new.txt   # on head
//	benchguard -old old.txt -new new.txt -threshold 10
//
// With -count > 1 each side has several samples per benchmark;
// benchguard scores each side by its best (minimum) ns/op, the
// noise-robust statistic for a gate — transient slowness inflates the
// mean of a loaded CI runner, but the minimum of a few runs approaches
// the machine's true capability from above. Benchmarks present in only
// one file are reported and skipped: a new benchmark must not fail the
// gate that introduces it.
//
// The second mode gates pimbench JSON reports instead of `go test
// -bench` text:
//
//	benchguard -oldjson base/BENCH_PR8.json -newjson BENCH_PR8.json
//
// Reports are walked structurally: every object carrying a name (or
// source) plus one of the known throughput fields (ops_per_sec,
// wall_ops_per_sec, model_ops_per_kunit, rounds_per_sec) contributes a
// gauge, scored best-sample (maximum — throughput is higher-is-better)
// and failed on drops beyond the threshold. Entries present in only
// one report are skipped exactly like text benchmarks.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
)

// benchLine matches one result line of `go test -bench` output:
//
//	BenchmarkHostProbeFlat/batch-64-8   5794   43381 ns/op   677.8 ns/key
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+\d+\s+([0-9.]+(?:e[+-]?[0-9]+)?) ns/op`)

// parseBench collects ns/op samples per benchmark name from one output
// file. Repeated names (-count > 1) accumulate.
func parseBench(path string) (map[string][]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := map[string][]float64{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		v, err := strconv.ParseFloat(m[2], 64)
		if err != nil || v <= 0 {
			continue
		}
		out[m[1]] = append(out[m[1]], v)
	}
	return out, sc.Err()
}

func best(samples []float64) float64 {
	b := samples[0]
	for _, s := range samples[1:] {
		if s < b {
			b = s
		}
	}
	return b
}

func bestMax(samples []float64) float64 {
	b := samples[0]
	for _, s := range samples[1:] {
		if s > b {
			b = s
		}
	}
	return b
}

// jsonGaugeFields are the throughput fields a pimbench JSON report can
// carry; all are higher-is-better.
var jsonGaugeFields = []string{
	"ops_per_sec", "wall_ops_per_sec", "model_ops_per_kunit", "rounds_per_sec",
}

// parseJSONReport walks a pimbench JSON report and collects throughput
// gauges from every object naming itself via "name" (or "source" for
// sweep points). The walk is structural, not schema-bound, so the gate
// keeps working as reports grow fields.
func parseJSONReport(path string) (map[string][]float64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var root any
	if err := json.Unmarshal(data, &root); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := map[string][]float64{}
	var walk func(node any, path string)
	walk = func(node any, path string) {
		switch n := node.(type) {
		case map[string]any:
			name := path
			if s, ok := n["name"].(string); ok && s != "" {
				name = s
			} else if s, ok := n["source"].(string); ok && s != "" {
				name = s
			}
			for _, f := range jsonGaugeFields {
				if v, ok := n[f].(float64); ok && v > 0 {
					key := name + " " + f
					out[key] = append(out[key], v)
				}
			}
			for k, child := range n {
				walk(child, path+"/"+k)
			}
		case []any:
			for _, c := range n {
				walk(c, path)
			}
		}
	}
	walk(root, "")
	return out, nil
}

// compareJSON scores old vs new throughput gauges (best = maximum
// sample, higher is better) and flags drops beyond threshold percent.
// Gauges present in only one report are reported and skipped, exactly
// like text benchmarks.
func compareJSON(old, neu map[string][]float64, thresholdPct float64) (lines []string, regressed []string) {
	names := make([]string, 0, len(old))
	for name := range old {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ns, ok := neu[name]
		if !ok {
			lines = append(lines, fmt.Sprintf("%-52s only in old report; skipped", name))
			continue
		}
		o, n := bestMax(old[name]), bestMax(ns)
		dropPct := 100 * (o - n) / o
		verdict := "ok"
		if dropPct > thresholdPct {
			verdict = "REGRESSED"
			regressed = append(regressed, name)
		}
		lines = append(lines, fmt.Sprintf("%-52s %14.2f -> %14.2f  %+6.1f%%  %s",
			name, o, n, -dropPct, verdict))
	}
	onlyNew := make([]string, 0)
	for name := range neu {
		if _, ok := old[name]; !ok {
			onlyNew = append(onlyNew, name)
		}
	}
	sort.Strings(onlyNew)
	for _, name := range onlyNew {
		lines = append(lines, fmt.Sprintf("%-52s new gauge; no baseline", name))
	}
	return lines, regressed
}

// compare scores old vs new and returns the formatted report lines and
// the names that regressed beyond threshold percent.
func compare(old, neu map[string][]float64, thresholdPct float64) (lines []string, regressed []string) {
	names := make([]string, 0, len(old))
	for name := range old {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ns, ok := neu[name]
		if !ok {
			lines = append(lines, fmt.Sprintf("%-52s only in old output; skipped", name))
			continue
		}
		o, n := best(old[name]), best(ns)
		deltaPct := 100 * (n - o) / o
		verdict := "ok"
		if deltaPct > thresholdPct {
			verdict = "REGRESSED"
			regressed = append(regressed, name)
		}
		lines = append(lines, fmt.Sprintf("%-52s %12.1f -> %12.1f ns/op  %+6.1f%%  %s",
			name, o, n, deltaPct, verdict))
	}
	onlyNew := make([]string, 0)
	for name := range neu {
		if _, ok := old[name]; !ok {
			onlyNew = append(onlyNew, name)
		}
	}
	sort.Strings(onlyNew)
	for _, name := range onlyNew {
		lines = append(lines, fmt.Sprintf("%-52s new benchmark; no baseline", name))
	}
	return lines, regressed
}

func main() {
	oldP := flag.String("old", "", "baseline `go test -bench` output")
	newP := flag.String("new", "", "candidate `go test -bench` output")
	oldJ := flag.String("oldjson", "", "baseline pimbench JSON report")
	newJ := flag.String("newjson", "", "candidate pimbench JSON report")
	threshold := flag.Float64("threshold", 10, "max allowed regression (ns/op increase or throughput drop), percent")
	flag.Parse()

	jsonMode := *oldJ != "" || *newJ != ""
	if jsonMode && (*oldP != "" || *newP != "") {
		fmt.Fprintln(os.Stderr, "benchguard: use either -old/-new or -oldjson/-newjson, not both")
		os.Exit(2)
	}
	parse, oldPath, newPath, unit := parseBench, *oldP, *newP, "benchmark"
	cmp := compare
	if jsonMode {
		parse, oldPath, newPath, unit = parseJSONReport, *oldJ, *newJ, "gauge"
		cmp = compareJSON
	}
	if oldPath == "" || newPath == "" {
		fmt.Fprintln(os.Stderr, "benchguard: both a baseline and a candidate file are required")
		os.Exit(2)
	}
	old, err := parse(oldPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
		os.Exit(2)
	}
	neu, err := parse(newPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
		os.Exit(2)
	}
	if len(old) == 0 {
		// An empty baseline (first run of the gate, base predates the
		// suite) cannot gate anything.
		fmt.Printf("benchguard: no %ss in baseline; nothing to gate\n", unit)
		return
	}
	lines, regressed := cmp(old, neu, *threshold)
	for _, l := range lines {
		fmt.Println(l)
	}
	if len(regressed) > 0 {
		fmt.Fprintf(os.Stderr, "\nbenchguard: %d %s(s) regressed more than %.0f%%: %v\n",
			len(regressed), unit, *threshold, regressed)
		os.Exit(1)
	}
	fmt.Printf("\nbenchguard: %d %s(s) within %.0f%% threshold\n", len(old), unit, *threshold)
}
