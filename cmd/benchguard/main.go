// Command benchguard compares two `go test -bench` outputs and fails
// when any benchmark present in both regressed in throughput by more
// than a threshold. It is the CI regression gate: the workflow runs the
// benchmark suite on the base commit and on the head, then lets
// benchguard decide whether the head may merge.
//
//	go test -bench . -count 3 -run '^$' . > old.txt   # on base
//	go test -bench . -count 3 -run '^$' . > new.txt   # on head
//	benchguard -old old.txt -new new.txt -threshold 10
//
// With -count > 1 each side has several samples per benchmark;
// benchguard scores each side by its best (minimum) ns/op, the
// noise-robust statistic for a gate — transient slowness inflates the
// mean of a loaded CI runner, but the minimum of a few runs approaches
// the machine's true capability from above. Benchmarks present in only
// one file are reported and skipped: a new benchmark must not fail the
// gate that introduces it.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
)

// benchLine matches one result line of `go test -bench` output:
//
//	BenchmarkHostProbeFlat/batch-64-8   5794   43381 ns/op   677.8 ns/key
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+\d+\s+([0-9.]+(?:e[+-]?[0-9]+)?) ns/op`)

// parseBench collects ns/op samples per benchmark name from one output
// file. Repeated names (-count > 1) accumulate.
func parseBench(path string) (map[string][]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := map[string][]float64{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		v, err := strconv.ParseFloat(m[2], 64)
		if err != nil || v <= 0 {
			continue
		}
		out[m[1]] = append(out[m[1]], v)
	}
	return out, sc.Err()
}

func best(samples []float64) float64 {
	b := samples[0]
	for _, s := range samples[1:] {
		if s < b {
			b = s
		}
	}
	return b
}

// compare scores old vs new and returns the formatted report lines and
// the names that regressed beyond threshold percent.
func compare(old, neu map[string][]float64, thresholdPct float64) (lines []string, regressed []string) {
	names := make([]string, 0, len(old))
	for name := range old {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ns, ok := neu[name]
		if !ok {
			lines = append(lines, fmt.Sprintf("%-52s only in old output; skipped", name))
			continue
		}
		o, n := best(old[name]), best(ns)
		deltaPct := 100 * (n - o) / o
		verdict := "ok"
		if deltaPct > thresholdPct {
			verdict = "REGRESSED"
			regressed = append(regressed, name)
		}
		lines = append(lines, fmt.Sprintf("%-52s %12.1f -> %12.1f ns/op  %+6.1f%%  %s",
			name, o, n, deltaPct, verdict))
	}
	onlyNew := make([]string, 0)
	for name := range neu {
		if _, ok := old[name]; !ok {
			onlyNew = append(onlyNew, name)
		}
	}
	sort.Strings(onlyNew)
	for _, name := range onlyNew {
		lines = append(lines, fmt.Sprintf("%-52s new benchmark; no baseline", name))
	}
	return lines, regressed
}

func main() {
	oldP := flag.String("old", "", "baseline `go test -bench` output")
	newP := flag.String("new", "", "candidate `go test -bench` output")
	threshold := flag.Float64("threshold", 10, "max allowed ns/op increase, percent")
	flag.Parse()
	if *oldP == "" || *newP == "" {
		fmt.Fprintln(os.Stderr, "benchguard: -old and -new are required")
		os.Exit(2)
	}
	old, err := parseBench(*oldP)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
		os.Exit(2)
	}
	neu, err := parseBench(*newP)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
		os.Exit(2)
	}
	if len(old) == 0 {
		// An empty baseline (first run of the gate, base predates the
		// suite) cannot gate anything.
		fmt.Println("benchguard: no benchmarks in baseline; nothing to gate")
		return
	}
	lines, regressed := compare(old, neu, *threshold)
	for _, l := range lines {
		fmt.Println(l)
	}
	if len(regressed) > 0 {
		fmt.Fprintf(os.Stderr, "\nbenchguard: %d benchmark(s) regressed more than %.0f%%: %v\n",
			len(regressed), *threshold, regressed)
		os.Exit(1)
	}
	fmt.Printf("\nbenchguard: %d benchmark(s) within %.0f%% threshold\n", len(old), *threshold)
}
