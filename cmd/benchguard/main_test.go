package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const oldOut = `goos: linux
BenchmarkOpGetBatch-8            	      10	  95000000 ns/op	  12 rounds/batch
BenchmarkOpGetBatch-8            	      10	  90000000 ns/op	  12 rounds/batch
BenchmarkHostProbeFlat/batch-64-8	    5794	     43381 ns/op	 677.8 ns/key
BenchmarkGoneBench-8             	     100	      1000 ns/op
PASS
`

const newOut = `goos: linux
BenchmarkOpGetBatch-8            	      10	  93000000 ns/op	  12 rounds/batch
BenchmarkHostProbeFlat/batch-64-8	    5794	     60000 ns/op	 900.0 ns/key
BenchmarkFreshBench-8            	     100	      2000 ns/op
PASS
`

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestParseBenchCollectsSamples(t *testing.T) {
	m, err := parseBench(writeTemp(t, "old.txt", oldOut))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(m["BenchmarkOpGetBatch-8"]); got != 2 {
		t.Errorf("OpGetBatch samples = %d, want 2 (repeated -count runs accumulate)", got)
	}
	if got := best(m["BenchmarkOpGetBatch-8"]); got != 90000000 {
		t.Errorf("best = %v, want the minimum 90000000", got)
	}
	if _, ok := m["BenchmarkHostProbeFlat/batch-64-8"]; !ok {
		t.Errorf("sub-benchmark name not parsed")
	}
}

func TestCompareFlagsOnlyRealRegressions(t *testing.T) {
	old, _ := parseBench(writeTemp(t, "old.txt", oldOut))
	neu, _ := parseBench(writeTemp(t, "new.txt", newOut))
	lines, regressed := compare(old, neu, 10)

	// 90ms -> 93ms is +3.3%: within threshold. 43381 -> 60000 is +38%.
	if len(regressed) != 1 || regressed[0] != "BenchmarkHostProbeFlat/batch-64-8" {
		t.Fatalf("regressed = %v, want exactly the HostProbeFlat benchmark", regressed)
	}
	joined := strings.Join(lines, "\n")
	for _, want := range []string{
		"BenchmarkGoneBench-8",  // only in old: reported, skipped
		"BenchmarkFreshBench-8", // new benchmark: no baseline, never fails
		"REGRESSED",
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("report missing %q:\n%s", want, joined)
		}
	}
	if strings.Count(joined, "REGRESSED") != 1 {
		t.Errorf("want exactly one REGRESSED line:\n%s", joined)
	}
}

const oldJSON = `{
  "zipf": 0.99,
  "scaling": [
    {"name": "scale/1", "shards": 1, "wall_ops_per_sec": 50000, "model_ops_per_kunit": 32.0},
    {"name": "scale/4", "shards": 4, "wall_ops_per_sec": 47000, "model_ops_per_kunit": 52.0}
  ],
  "migration": {
    "uniform":     {"name": "mig/uniform", "model_ops_per_kunit": 46.0, "wall_ops_per_sec": 37000},
    "hot_static":  {"name": "mig/hot-static", "model_ops_per_kunit": 22.0, "wall_ops_per_sec": 45000}
  },
  "gone": {"name": "old-only", "ops_per_sec": 123.0}
}`

const newJSON = `{
  "scaling": [
    {"name": "scale/1", "shards": 1, "wall_ops_per_sec": 51000, "model_ops_per_kunit": 31.5},
    {"name": "scale/4", "shards": 4, "wall_ops_per_sec": 30000, "model_ops_per_kunit": 51.0}
  ],
  "migration": {
    "uniform":     {"name": "mig/uniform", "model_ops_per_kunit": 45.0, "wall_ops_per_sec": 36500},
    "hot_static":  {"name": "mig/hot-static", "model_ops_per_kunit": 21.5, "wall_ops_per_sec": 44000}
  },
  "fresh": {"name": "new-only", "ops_per_sec": 55.0}
}`

func TestParseJSONReportCollectsGauges(t *testing.T) {
	m, err := parseJSONReport(writeTemp(t, "old.json", oldJSON))
	if err != nil {
		t.Fatal(err)
	}
	for key, want := range map[string]float64{
		"scale/4 wall_ops_per_sec":        47000,
		"scale/4 model_ops_per_kunit":     52.0,
		"mig/uniform model_ops_per_kunit": 46.0,
		"old-only ops_per_sec":            123.0,
	} {
		got, ok := m[key]
		if !ok || len(got) != 1 || got[0] != want {
			t.Errorf("%s = %v, want [%v]", key, got, want)
		}
	}
	if _, ok := m["scale/4 zipf"]; ok {
		t.Errorf("non-gauge field collected")
	}
}

func TestCompareJSONFlagsThroughputDrops(t *testing.T) {
	old, err := parseJSONReport(writeTemp(t, "old.json", oldJSON))
	if err != nil {
		t.Fatal(err)
	}
	neu, err := parseJSONReport(writeTemp(t, "new.json", newJSON))
	if err != nil {
		t.Fatal(err)
	}
	lines, regressed := compareJSON(old, neu, 10)
	// Only scale/4 wall ops dropped beyond 10% (47000 -> 30000, -36%);
	// every other gauge wobbles within threshold.
	if len(regressed) != 1 || regressed[0] != "scale/4 wall_ops_per_sec" {
		t.Fatalf("regressed = %v, want exactly the scale/4 wall gauge", regressed)
	}
	joined := strings.Join(lines, "\n")
	for _, want := range []string{
		"old-only ops_per_sec", // only in old: reported, skipped
		"new-only ops_per_sec", // no baseline: never fails
		"REGRESSED",
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("report missing %q:\n%s", want, joined)
		}
	}
	if strings.Count(joined, "REGRESSED") != 1 {
		t.Errorf("want exactly one REGRESSED line:\n%s", joined)
	}
}

func TestCompareJSONImprovementNeverFails(t *testing.T) {
	old := map[string][]float64{"x ops_per_sec": {100}}
	neu := map[string][]float64{"x ops_per_sec": {500}}
	if _, regressed := compareJSON(old, neu, 10); len(regressed) != 0 {
		t.Errorf("a 5x improvement must not trip the gate: %v", regressed)
	}
}

func TestCompareThresholdBoundary(t *testing.T) {
	old := map[string][]float64{"BenchmarkX-8": {1000}}
	neu := map[string][]float64{"BenchmarkX-8": {1100}}
	if _, regressed := compare(old, neu, 10); len(regressed) != 0 {
		t.Errorf("exactly +10%% must pass a 10%% threshold (gate is strict-greater)")
	}
	neu["BenchmarkX-8"] = []float64{1101}
	if _, regressed := compare(old, neu, 10); len(regressed) != 1 {
		t.Errorf("+10.1%% must fail a 10%% threshold")
	}
}
