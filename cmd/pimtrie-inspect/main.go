// Command pimtrie-inspect loads a synthetic workload into a PIM-trie and
// dumps the structural and cost picture: blocks, regions, per-module
// space and the cost of a probe batch. Useful for eyeballing how the
// index lays data out under different distributions.
//
// Usage:
//
//	pimtrie-inspect -p 32 -n 10000 -dist shared -prefix 512
//	pimtrie-inspect -dist var -min 32 -max 512
//	pimtrie-inspect -rounds -op insert      # phase-attributed round table
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/pimlab/pimtrie/internal/bitstr"
	"github.com/pimlab/pimtrie/internal/core"
	"github.com/pimlab/pimtrie/internal/metrics"
	"github.com/pimlab/pimtrie/internal/obs"
	"github.com/pimlab/pimtrie/internal/pim"
	"github.com/pimlab/pimtrie/internal/workload"
)

func main() {
	var (
		p      = flag.Int("p", 32, "PIM modules")
		n      = flag.Int("n", 10000, "stored keys")
		batch  = flag.Int("batch", 1024, "probe batch size")
		seed   = flag.Int64("seed", 1, "seed")
		dist   = flag.String("dist", "var", "distribution: fixed|var|shared|chain|ip")
		bits   = flag.Int("bits", 128, "key bits (fixed)")
		minB   = flag.Int("min", 32, "min bits (var)")
		maxB   = flag.Int("max", 256, "max bits (var)")
		prefix = flag.Int("prefix", 512, "shared prefix bits (shared)")
		kb     = flag.Int("kb", 0, "block words K_B (0 = default)")
		trace  = flag.Bool("trace", false, "print a per-round trace of the probe batch")
		rounds = flag.Bool("rounds", false, "print the phase-attributed round table for the op chosen with -op")
		op     = flag.String("op", "lcp", "operation for -rounds: lcp|get|insert|delete|subtree")
	)
	flag.Parse()

	g := workload.New(*seed)
	var keys []bitstr.String
	switch *dist {
	case "fixed":
		keys = g.FixedLen(*n, *bits)
	case "var":
		keys = g.VarLen(*n, *minB, *maxB)
	case "shared":
		keys = g.SharedPrefix(*n, *prefix, 64)
	case "chain":
		keys = g.PrefixChain(*n, 8)
	case "ip":
		keys = g.IPv4Prefixes(*n)
	default:
		fmt.Fprintf(os.Stderr, "unknown -dist %q\n", *dist)
		os.Exit(2)
	}
	values := g.Values(len(keys))

	sys := pim.NewSystem(*p, pim.WithSeed(*seed))
	pt := core.New(sys, core.Config{HashSeed: uint64(*seed), BlockWords: *kb})
	pt.Build(keys, values)

	st := pt.CollectStats()
	total, per := sys.SpaceWords()
	min, max := per[0], per[0]
	for _, w := range per {
		if w < min {
			min = w
		}
		if w > max {
			max = w
		}
	}
	fmt.Printf("pimtrie-inspect: P=%d dist=%s\n", *p, *dist)
	fmt.Printf("keys            %d\n", st.Keys)
	fmt.Printf("blocks          %d (K_B=%d words)\n", st.Blocks, pt.Config().BlockWords)
	fmt.Printf("regions         %d (K_MB=%d metas)\n", st.Regions, pt.Config().MetaBlockMax)
	fmt.Printf("space           %d words total; per-module min %d / avg %d / max %d\n",
		total, min, total / *p, max)
	fmt.Printf("space balance   %.2f (P·max/total)\n", float64(max)*float64(*p)/float64(total))

	queries := g.PrefixQueries(keys, *batch, 16)
	if *trace {
		sys.StartTrace()
	}
	before := sys.Metrics()
	pt.LCP(queries)
	d := sys.Metrics().Sub(before)
	fmt.Printf("\nLCP batch of %d:\n", len(queries))
	fmt.Printf("rounds          %d\n", d.Rounds)
	fmt.Printf("io-words        %d (%.2f / op)\n", d.IOWords, float64(d.IOWords)/float64(len(queries)))
	fmt.Printf("io-time         %d (balance %.2f)\n", d.IOTime, d.IOBalance())
	fmt.Printf("pim-time        %d (balance %.2f)\n", d.PIMTime, d.WorkBalance())
	fmt.Printf("cpu-work        %d\n", d.CPUWork)
	ioMM, ioCV := metrics.Imbalance(d.PerModuleIO)
	wrkMM, wrkCV := metrics.Imbalance(d.PerModuleWrk)
	fmt.Printf("imbalance       io max/mean=%.2f cv=%.3f   work max/mean=%.2f cv=%.3f\n",
		ioMM, ioCV, wrkMM, wrkCV)
	if pt.FalseHits() > 0 || pt.Rehashes() > 0 {
		fmt.Printf("verification    %d false hits dropped, %d rehashes\n", pt.FalseHits(), pt.Rehashes())
	}
	if *trace {
		fmt.Printf("\nper-round trace (batch phases):\n")
		fmt.Printf("%-6s %-7s %-8s %-10s %-10s %-8s %-8s\n",
			"round", "tasks", "modules", "send", "recv", "max-io", "max-work")
		for i, tr := range sys.StopTrace() {
			fmt.Printf("%-6d %-7d %-8d %-10d %-10d %-8d %-8d\n",
				i+1, tr.Tasks, tr.Modules, tr.SendWords, tr.RecvWords, tr.MaxIO, tr.MaxWork)
		}
	}

	if *rounds {
		printRounds(pt, sys, g, keys, *op, *batch)
	}
}

// printRounds runs one more batch of the chosen operation under an obs
// tracer and prints its rounds with phase attribution — the same table
// -trace prints, plus the owning phase of every round.
func printRounds(pt *core.PIMTrie, sys *pim.System, g *workload.Gen, keys []bitstr.String, op string, batch int) {
	tr := obs.Attach(sys, "inspect/"+op)
	switch op {
	case "lcp":
		pt.LCP(g.PrefixQueries(keys, batch, 16))
	case "get":
		pt.Get(g.Zipf(keys, batch, 1.2))
	case "insert":
		fresh := g.VarLen(batch/4, 32, 256)
		pt.Insert(fresh, g.Values(len(fresh)))
	case "delete":
		n := batch / 4
		if n > len(keys) {
			n = len(keys)
		}
		pt.Delete(keys[:n])
	case "subtree":
		n := 4
		if n > len(keys) {
			n = len(keys)
		}
		prefixes := make([]bitstr.String, n)
		for i := range prefixes {
			k := keys[i]
			l := k.Len() / 4
			prefixes[i] = k.Prefix(l)
		}
		pt.SubtreeQueryBatch(prefixes)
	default:
		tr.Detach()
		fmt.Fprintf(os.Stderr, "unknown -op %q (want lcp|get|insert|delete|subtree)\n", op)
		os.Exit(2)
	}
	tr.Detach()
	d := tr.Data()
	if err := d.Check(); err != nil {
		fmt.Fprintf(os.Stderr, "trace self-check failed: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("\nphase-attributed rounds (%s batch):\n", op)
	fmt.Printf("%-6s %-30s %-7s %-8s %-10s %-10s %-8s %-8s\n",
		"round", "phase", "tasks", "modules", "send", "recv", "max-io", "max-work")
	for i := range d.Rounds {
		r := &d.Rounds[i]
		path := r.Path
		if path == "" {
			path = obs.UnattributedPath
		}
		fmt.Printf("%-6d %-30s %-7d %-8d %-10d %-10d %-8d %-8d\n",
			r.Index+1, path, r.Tasks, r.Modules, r.SendWords, r.RecvWords, r.MaxIO, r.MaxWork)
	}
	fmt.Printf("%d rounds, %d spans; io-time %d, io-words %d\n",
		len(d.Rounds), len(d.Spans), d.Total.IOTime, d.Total.IOWords)
}
