package pimtrie

import (
	"math/rand"
	"testing"
)

func TestPublicAPIRoundTrip(t *testing.T) {
	idx := New(8, Options{Seed: 1})
	keys := []Key{
		KeyFromString("apple"),
		KeyFromString("application"),
		KeyFromString("banana"),
		KeyFromBits("0101"),
		KeyFromUint(0xdeadbeef, 32),
	}
	values := []uint64{1, 2, 3, 4, 5}
	idx.Insert(keys, values)
	if idx.Len() != 5 {
		t.Fatalf("Len = %d", idx.Len())
	}
	vals, found := idx.Get(keys)
	for i := range keys {
		if !found[i] || vals[i] != values[i] {
			t.Fatalf("Get(%d) = %d,%v", i, vals[i], found[i])
		}
	}
	// "appl" is a shared prefix of apple/application: 4 bytes + 'e' vs 'i'
	// share 5 further bits (0110 0101 vs 0110 1001 share "0110").
	lcp := idx.LCP([]Key{KeyFromString("apply")})
	if lcp[0] < 4*8 {
		t.Fatalf("LCP(apply) = %d bits", lcp[0])
	}
	// Prefix scan under "appl".
	kvs := idx.Subtree(KeyFromString("appl"))
	if len(kvs) != 2 {
		t.Fatalf("Subtree(appl) = %d results", len(kvs))
	}
	del := idx.Delete([]Key{KeyFromString("apple"), KeyFromString("nope")})
	if !del[0] || del[1] {
		t.Fatalf("Delete = %v", del)
	}
	if idx.Len() != 4 {
		t.Fatalf("Len after delete = %d", idx.Len())
	}
}

func TestPublicAPILoadAndMetrics(t *testing.T) {
	idx := New(16, Options{Seed: 2})
	r := rand.New(rand.NewSource(3))
	n := 1000
	keys := make([]Key, n)
	values := make([]uint64, n)
	for i := range keys {
		keys[i] = KeyFromUint(r.Uint64(), 64)
		values[i] = uint64(i)
	}
	idx.Load(keys, values)
	if idx.Len() != n {
		t.Fatalf("Len = %d", idx.Len())
	}
	before := idx.Metrics()
	idx.LCP(keys[:256])
	d := idx.Metrics().Sub(before)
	if d.Rounds == 0 || d.IOWords == 0 {
		t.Fatalf("metrics did not move: %+v", d)
	}
	if d.Rounds > 16 {
		t.Fatalf("LCP batch used %d rounds; expected a small constant", d.Rounds)
	}
	if idx.SpaceWords() == 0 || idx.P() != 16 {
		t.Fatal("accessors broken")
	}
	st := idx.Stats()
	if st.Blocks == 0 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestPublicAPIEmptyIndex(t *testing.T) {
	idx := New(4, Options{})
	if got := idx.LCP([]Key{KeyFromString("x")}); got[0] != 0 {
		t.Fatalf("LCP on empty = %d", got[0])
	}
	if kvs := idx.Subtree(KeyFromString("x")); kvs != nil {
		t.Fatalf("Subtree on empty = %v", kvs)
	}
	if _, found := idx.Get([]Key{KeyFromString("x")}); found[0] {
		t.Fatal("Get on empty found something")
	}
}
